//! NUMA topology and placement-policy conformance.
//!
//! Two contracts from DESIGN.md §10:
//!
//! 1. `Topology::validate` is the single gate every topology passes
//!    through ([`Topology::new`] panics on failure, `MachineConfig` and
//!    `CostModel::with_topology` only accept validated topologies), so
//!    the property tests pin its invariants: zero diagonal, symmetry,
//!    and no free remote hop (local distance 0 is never dearer than any
//!    off-diagonal entry, which must be ≥ 1).
//! 2. Frame accounting is placement-independent: after unmap, quiesce,
//!    and magazine flush, `outstanding_frames() == 0` on every backend ×
//!    every placement policy, even when frees travel through per-node
//!    reservoirs.

use std::sync::Arc;

use proptest::prelude::*;
use radixvm::backend::{build, BackendKind};
use radixvm::hw::{
    Backing, Machine, MachineConfig, PlacementPolicy, Prot, VmError, VmSystem, PAGE_SIZE,
};
use radixvm::sync::Topology;

/// Reference implementation of the topology invariants, written
/// independently of `validate` so the property test is not circular.
fn matrix_ok(nnodes: usize, distance: &[u64]) -> bool {
    if nnodes == 0 || distance.len() != nnodes * nnodes {
        return false;
    }
    for i in 0..nnodes {
        for j in 0..nnodes {
            let d = distance[i * nnodes + j];
            if i == j && d != 0 {
                return false; // non-zero diagonal
            }
            if i != j && d == 0 {
                return false; // remote hop priced below local
            }
            if d != distance[j * nnodes + i] {
                return false; // asymmetric
            }
        }
    }
    true
}

proptest! {
    /// `validate` accepts exactly the matrices the reference check
    /// accepts, over arbitrary small matrices (most random draws are
    /// invalid, exercising every rejection arm).
    #[test]
    fn validate_matches_reference(
        (nnodes, raw) in (1usize..5, proptest::collection::vec(0u64..4, 0..25))
    ) {
        let mut distance = raw;
        distance.resize(nnodes * nnodes, 0);
        let t = Topology { nnodes, core_to_node: Vec::new(), distance: distance.clone() };
        prop_assert_eq!(
            t.validate().is_ok(),
            matrix_ok(nnodes, &distance),
            "validate disagrees with reference on {:?}", t
        );
    }

    /// Symmetrizing any strictly-positive off-diagonal draw yields a
    /// valid topology — and perturbing it (non-zero diagonal, asymmetry,
    /// zero off-diagonal) always breaks validation.
    #[test]
    fn perturbed_valid_matrices_are_rejected(
        (nnodes, raw, i, j) in (
            2usize..5,
            proptest::collection::vec(1u64..9, 16..17),
            0usize..4,
            0usize..4,
        )
    ) {
        let (i, j) = (i % nnodes, j % nnodes);
        let mut distance = vec![0u64; nnodes * nnodes];
        for a in 0..nnodes {
            for b in 0..nnodes {
                if a != b {
                    // Symmetric, ≥ 1 off-diagonal.
                    distance[a * nnodes + b] = raw[a.min(b) * 4 + a.max(b)];
                }
            }
        }
        let valid = Topology { nnodes, core_to_node: Vec::new(), distance: distance.clone() };
        prop_assert!(valid.validate().is_ok());

        // Non-zero diagonal.
        let mut bad = distance.clone();
        bad[i * nnodes + i] = 1;
        prop_assert!(Topology { nnodes, core_to_node: Vec::new(), distance: bad }
            .validate().is_err());
        // Free remote hop.
        let mut bad = distance.clone();
        bad[i * nnodes + j] = 0;
        bad[j * nnodes + i] = 0;
        if i != j {
            prop_assert!(Topology { nnodes, core_to_node: Vec::new(), distance: bad }
                .validate().is_err());
        }
        // Asymmetry.
        let mut bad = distance.clone();
        if i != j {
            bad[i * nnodes + j] += 1;
            prop_assert!(Topology { nnodes, core_to_node: Vec::new(), distance: bad }
                .validate().is_err());
        }
        // Out-of-range core mapping.
        prop_assert!(Topology {
            nnodes,
            core_to_node: vec![nnodes as u16],
            distance,
        }
        .validate()
        .is_err());
    }

    /// The stock constructors are valid at any size.
    #[test]
    fn stock_topologies_validate(nnodes in 1usize..9) {
        prop_assert!(Topology::striped(nnodes).validate().is_ok());
        prop_assert!(Topology::single().validate().is_ok());
    }
}

const BASE: u64 = 0x51_0000_0000;

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::FirstTouch,
    PlacementPolicy::Interleave,
    PlacementPolicy::ReplicateReadOnly,
];

/// Mixed mmap/write/read/munmap traffic from all cores on a 4-node
/// machine: frees flow through node-tagged magazines into per-node
/// reservoirs, and the pool must still account for every frame.
#[test]
fn no_policy_leaks_frames_across_nodes() {
    for kind in BackendKind::ALL {
        for policy in POLICIES {
            let ncores = 4;
            let mut cfg = MachineConfig::new(ncores);
            cfg.placement = policy;
            cfg.topology = Topology::striped(4);
            let machine = Machine::with_config(cfg);
            {
                let vm: Arc<dyn VmSystem> = build(&machine, kind);
                for core in 0..ncores {
                    vm.attach_core(core);
                }
                // Each core maps and touches its own range (first-touch
                // homes locally, interleave scatters), then unmaps half
                // and lets drop reclaim the rest.
                for core in 0..ncores {
                    let base = BASE + core as u64 * (1 << 30);
                    vm.mmap(core, base, 16 * PAGE_SIZE, Prot::RW, Backing::Anon)
                        .unwrap_or_else(|e| panic!("{kind}/{policy:?}: mmap: {e}"));
                    for p in 0..16 {
                        machine
                            .write_u64(core, &*vm, base + p * PAGE_SIZE, p)
                            .unwrap_or_else(|e| panic!("{kind}/{policy:?}: write: {e}"));
                    }
                }
                // Cross-node reads, then cross-node *frees*: each core
                // unmaps its right neighbor's range, so the freed frames
                // are homed on a different node than the freeing core.
                for core in 0..ncores {
                    let victim = (core + 1) % ncores;
                    let base = BASE + victim as u64 * (1 << 30);
                    machine
                        .read_u64(core, &*vm, base)
                        .unwrap_or_else(|e| panic!("{kind}/{policy:?}: read: {e}"));
                    vm.munmap(core, base, 8 * PAGE_SIZE)
                        .unwrap_or_else(|e| panic!("{kind}/{policy:?}: munmap: {e}"));
                    assert_eq!(
                        machine.read_u64(core, &*vm, base),
                        Err(VmError::NoMapping),
                        "{kind}/{policy:?}: page survived munmap"
                    );
                }
                vm.quiesce();
                drop(vm);
            }
            machine.pool().flush_magazines();
            assert_eq!(
                machine.pool().outstanding_frames(),
                0,
                "{kind}/{policy:?}: frames leaked across node reservoirs"
            );
        }
    }
}
