//! Real-thread concurrency stress across the whole stack, plus failure
//! injection: the invariants RadixVM's design guarantees must hold under
//! genuine interleaving, and breaking the mechanism must be *detected*.
//!
//! Every VM is constructed through the backend layer; white-box checks
//! that need the concrete type (Refcache accounting) downcast via
//! `VmSystem::as_any`.

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::core_vm::RadixVm;
use radixvm::hw::{Backing, Machine, MachineConfig, Prot, VmError, PAGE_SIZE};

const BASE: u64 = 0x60_0000_0000;

/// The paper's ordering invariant: after munmap returns, no access on any
/// core reaches the old frame — even while other threads are racing
/// faults on the same page. Generation checks would convert any violation
/// into `StaleTranslation`; seeing zero of them proves the shootdown
/// protocol holds under real interleaving.
#[test]
fn munmap_ordering_under_racing_faults() {
    let machine = Machine::new(4);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..4 {
        vm.attach_core(c);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Three reader threads hammer the page.
    for core in 1..4usize {
        let machine = machine.clone();
        let vm = vm.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match machine.read_u64(core, &*vm, BASE) {
                    Ok(_) | Err(VmError::NoMapping) => reads += 1,
                    Err(e) => panic!("reader saw {e}"),
                }
            }
            reads
        }));
    }
    // One mapper thread cycles the mapping.
    for i in 0..500u64 {
        vm.mmap(0, BASE, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        machine.write_u64(0, &*vm, BASE, i).unwrap();
        vm.munmap(0, BASE, PAGE_SIZE).unwrap();
        if i % 64 == 0 {
            vm.maintain(0);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(machine.stats().stale_detected, 0, "ordering invariant held");
}

/// Concurrent fork + copy-on-write churn: parent and children hammer the
/// same pages; all observed values must be internally consistent and all
/// frames must be reclaimed at the end.
#[test]
fn fork_cow_under_concurrency() {
    let machine = Machine::new(4);
    let parent = build(&machine, BackendKind::Radix);
    for c in 0..4 {
        parent.attach_core(c);
    }
    parent
        .mmap(0, BASE, 8 * PAGE_SIZE, Prot::RW, Backing::Anon)
        .unwrap();
    for p in 0..8u64 {
        machine
            .write_u64(0, &*parent, BASE + p * PAGE_SIZE, 1000 + p)
            .unwrap();
    }
    let mut handles = Vec::new();
    for core in 1..4usize {
        let machine = machine.clone();
        let child = parent.fork(0).expect("RadixVM supports fork");
        child.attach_core(core);
        handles.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let p = i % 8;
                let va = BASE + p * PAGE_SIZE;
                if i % 3 == 0 {
                    machine
                        .write_u64(core, &*child, va, core as u64 * 10_000 + i)
                        .unwrap();
                } else {
                    let v = machine.read_u64(core, &*child, va).unwrap();
                    // A child sees either the pre-fork value or its own
                    // writes — never another child's.
                    assert!(
                        v == 1000 + p || v / 10_000 == core as u64,
                        "core {core} saw foreign value {v}"
                    );
                }
            }
            drop(child);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Parent data untouched by any child.
    for p in 0..8u64 {
        assert_eq!(
            machine.read_u64(0, &*parent, BASE + p * PAGE_SIZE).unwrap(),
            1000 + p
        );
    }
    let cache = parent
        .as_any()
        .downcast_ref::<RadixVm>()
        .expect("Radix backend is a RadixVm")
        .cache()
        .clone();
    drop(parent);
    cache.quiesce();
    assert_eq!(cache.live_objects(), 0, "all pages and nodes reclaimed");
}

/// Failure injection: with shootdowns disabled, the same workload that
/// passes above must produce *detected* stale translations rather than
/// silent corruption.
#[test]
fn suppressed_shootdowns_are_detected_not_silent() {
    let mut cfg = MachineConfig::new(2);
    cfg.shootdown_enabled = false;
    let machine = Machine::with_config(cfg);
    let vm = build(&machine, BackendKind::Radix);
    vm.attach_core(0);
    vm.attach_core(1);
    let mut detected = 0u64;
    for i in 0..50u64 {
        vm.mmap(0, BASE, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        // Core 1 caches the translation (a leftover stale entry from the
        // previous round is itself a detection).
        match machine.write_u64(1, &*vm, BASE, i) {
            Ok(()) => {}
            Err(VmError::StaleTranslation) => {
                detected += 1;
                machine.write_u64(1, &*vm, BASE, i).unwrap(); // refaults
            }
            Err(e) => panic!("unexpected {e}"),
        }
        vm.munmap(0, BASE, PAGE_SIZE).unwrap(); // no shootdown!
        vm.maintain(0);
        vm.maintain(1);
        vm.quiesce(); // frame actually freed and reusable
        match machine.read_u64(1, &*vm, BASE) {
            Err(VmError::StaleTranslation) => detected += 1,
            Err(VmError::NoMapping) | Ok(_) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(detected > 0, "injected fault must be observed");
    assert_eq!(machine.stats().stale_detected, detected);
}

/// Refcache epochs keep up under adversarial maintenance schedules: one
/// core never calls maintain until the end; freeing stalls (bounded
/// memory growth is the documented trade-off) but never double-frees or
/// frees early.
#[test]
fn lagging_core_stalls_but_never_corrupts() {
    let machine = Machine::new(3);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..3 {
        vm.attach_core(c);
    }
    for i in 0..200u64 {
        let addr = BASE + (i % 16) * PAGE_SIZE;
        vm.mmap(0, addr, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        machine.write_u64(0, &*vm, addr, i).unwrap();
        vm.munmap(0, addr, PAGE_SIZE).unwrap();
        vm.maintain(0); // cores 1 and 2 never tick
    }
    // Nothing freed yet? At least nothing *wrongly* freed: reads of live
    // mappings still work and no stale translations appeared.
    assert_eq!(machine.stats().stale_detected, 0);
    // Once the lagging cores tick, everything drains.
    vm.quiesce();
    let st = machine.pool().stats();
    assert_eq!(st.local_frees + st.remote_frees, 200);
}

/// Mixed overlapping traffic on every backend survives and stays
/// stale-free.
#[test]
fn overlapping_stress_all_backends() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(4);
        let vm = build(&machine, kind);
        for c in 0..4 {
            vm.attach_core(c);
        }
        let mut handles = Vec::new();
        for core in 0..4usize {
            let machine = machine.clone();
            let vm = vm.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = core as u64 + 9;
                for i in 0..250u64 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let lo = rng % 24;
                    let len = 1 + (rng >> 8) % 6;
                    let addr = BASE + lo * PAGE_SIZE;
                    match rng % 3 {
                        0 => {
                            vm.mmap(core, addr, len * PAGE_SIZE, Prot::RW, Backing::Anon)
                                .unwrap();
                        }
                        1 => {
                            vm.munmap(core, addr, len * PAGE_SIZE).unwrap();
                        }
                        _ => match machine.write_u64(core, &*vm, addr, i) {
                            Ok(()) | Err(VmError::NoMapping) => {}
                            Err(e) => panic!("{}: unexpected {e}", vm.name()),
                        },
                    }
                    if i % 64 == 0 {
                        vm.maintain(core);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            machine.stats().stale_detected,
            0,
            "{} leaked a stale translation",
            vm.name()
        );
    }
}
