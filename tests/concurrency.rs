//! Real-thread concurrency stress across the whole stack, plus failure
//! injection: the invariants RadixVM's design guarantees must hold under
//! genuine interleaving, and breaking the mechanism must be *detected*.
//!
//! Every VM is constructed through the backend layer; white-box checks
//! that need the concrete type (Refcache accounting) downcast via
//! `VmSystem::as_any`.

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::core_vm::RadixVm;
use radixvm::hw::{Backing, Machine, MachineConfig, Prot, VmError, PAGE_SIZE};
use radixvm::radix::{LockMode, RadixConfig, RadixTree};
use radixvm::refcache::Refcache;
use radixvm::sync::RangeLockKind;

const BASE: u64 = 0x60_0000_0000;

/// The paper's ordering invariant: after munmap returns, no access on any
/// core reaches the old frame — even while other threads are racing
/// faults on the same page. Generation checks would convert any violation
/// into `StaleTranslation`; seeing zero of them proves the shootdown
/// protocol holds under real interleaving.
#[test]
fn munmap_ordering_under_racing_faults() {
    let machine = Machine::new(4);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..4 {
        vm.attach_core(c);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Three reader threads hammer the page.
    for core in 1..4usize {
        let machine = machine.clone();
        let vm = vm.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match machine.read_u64(core, &*vm, BASE) {
                    Ok(_) | Err(VmError::NoMapping) => reads += 1,
                    Err(e) => panic!("reader saw {e}"),
                }
            }
            reads
        }));
    }
    // One mapper thread cycles the mapping.
    for i in 0..500u64 {
        vm.mmap(0, BASE, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        machine.write_u64(0, &*vm, BASE, i).unwrap();
        vm.munmap(0, BASE, PAGE_SIZE).unwrap();
        if i % 64 == 0 {
            vm.maintain(0);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(machine.stats().stale_detected, 0, "ordering invariant held");
}

/// Concurrent fork + copy-on-write churn: parent and children hammer the
/// same pages; all observed values must be internally consistent and all
/// frames must be reclaimed at the end.
#[test]
fn fork_cow_under_concurrency() {
    let machine = Machine::new(4);
    let parent = build(&machine, BackendKind::Radix);
    for c in 0..4 {
        parent.attach_core(c);
    }
    parent
        .mmap(0, BASE, 8 * PAGE_SIZE, Prot::RW, Backing::Anon)
        .unwrap();
    for p in 0..8u64 {
        machine
            .write_u64(0, &*parent, BASE + p * PAGE_SIZE, 1000 + p)
            .unwrap();
    }
    let mut handles = Vec::new();
    for core in 1..4usize {
        let machine = machine.clone();
        let child = parent.fork(0).expect("RadixVM supports fork");
        child.attach_core(core);
        handles.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let p = i % 8;
                let va = BASE + p * PAGE_SIZE;
                if i % 3 == 0 {
                    machine
                        .write_u64(core, &*child, va, core as u64 * 10_000 + i)
                        .unwrap();
                } else {
                    let v = machine.read_u64(core, &*child, va).unwrap();
                    // A child sees either the pre-fork value or its own
                    // writes — never another child's.
                    assert!(
                        v == 1000 + p || v / 10_000 == core as u64,
                        "core {core} saw foreign value {v}"
                    );
                }
            }
            drop(child);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Parent data untouched by any child.
    for p in 0..8u64 {
        assert_eq!(
            machine.read_u64(0, &*parent, BASE + p * PAGE_SIZE).unwrap(),
            1000 + p
        );
    }
    let cache = parent
        .as_any()
        .downcast_ref::<RadixVm>()
        .expect("Radix backend is a RadixVm")
        .cache()
        .clone();
    drop(parent);
    cache.quiesce();
    assert_eq!(cache.live_objects(), 0, "all pages and nodes reclaimed");
}

/// Failure injection: with shootdowns disabled, the same workload that
/// passes above must produce *detected* stale translations rather than
/// silent corruption.
#[test]
fn suppressed_shootdowns_are_detected_not_silent() {
    let mut cfg = MachineConfig::new(2);
    cfg.shootdown_enabled = false;
    let machine = Machine::with_config(cfg);
    let vm = build(&machine, BackendKind::Radix);
    vm.attach_core(0);
    vm.attach_core(1);
    let mut detected = 0u64;
    for i in 0..50u64 {
        vm.mmap(0, BASE, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        // Core 1 caches the translation (a leftover stale entry from the
        // previous round is itself a detection).
        match machine.write_u64(1, &*vm, BASE, i) {
            Ok(()) => {}
            Err(VmError::StaleTranslation) => {
                detected += 1;
                machine.write_u64(1, &*vm, BASE, i).unwrap(); // refaults
            }
            Err(e) => panic!("unexpected {e}"),
        }
        vm.munmap(0, BASE, PAGE_SIZE).unwrap(); // no shootdown!
        vm.maintain(0);
        vm.maintain(1);
        vm.quiesce(); // frame actually freed and reusable
        match machine.read_u64(1, &*vm, BASE) {
            Err(VmError::StaleTranslation) => detected += 1,
            Err(VmError::NoMapping) | Ok(_) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(detected > 0, "injected fault must be observed");
    assert_eq!(machine.stats().stale_detected, detected);
}

/// Refcache epochs keep up under adversarial maintenance schedules: one
/// core never calls maintain until the end; freeing stalls (bounded
/// memory growth is the documented trade-off) but never double-frees or
/// frees early.
#[test]
fn lagging_core_stalls_but_never_corrupts() {
    let machine = Machine::new(3);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..3 {
        vm.attach_core(c);
    }
    for i in 0..200u64 {
        let addr = BASE + (i % 16) * PAGE_SIZE;
        vm.mmap(0, addr, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        machine.write_u64(0, &*vm, addr, i).unwrap();
        vm.munmap(0, addr, PAGE_SIZE).unwrap();
        vm.maintain(0); // cores 1 and 2 never tick
    }
    // Nothing freed yet? At least nothing *wrongly* freed: reads of live
    // mappings still work and no stale translations appeared.
    assert_eq!(machine.stats().stale_detected, 0);
    // Once the lagging cores tick, everything drains.
    vm.quiesce();
    let st = machine.pool().stats();
    assert_eq!(st.local_frees + st.remote_frees, 200);
}

/// The leaf hint cache under adversarial churn: one core faults
/// repeatedly inside a 512-page block while another munmaps and remaps
/// the whole block, with collapse enabled and both cores ticking
/// Refcache so emptied leaves actually die and get reallocated. The
/// hint must never serve a freed node (values read through it are
/// always one of the two generation markers, never garbage) and the
/// structure must still collapse to just the root at the end.
#[test]
fn leaf_hint_never_serves_freed_or_stale_nodes() {
    let cache = Arc::new(Refcache::new(2));
    let tree = Arc::new(RadixTree::<u64>::new(
        cache,
        RadixConfig {
            collapse: true,
            leaf_hints: true,
            ..RadixConfig::default()
        },
    ));
    let block = 512 * 5;
    // A second, stable block the faulter periodically migrates to: the
    // hint follows it there (surrendering the churned leaf's pin), which
    // is what lets the cleared leaf actually die mid-run.
    let stable = 512 * 9;
    tree.lock_range(0, stable, stable + 512, LockMode::ExpandAll)
        .replace(&7);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // While set, the faulter works the stable block instead of the
    // churned one — modeling a thread whose working set moved away, so
    // its hint pin stops protecting the churned leaf and the leaf can
    // actually die (a hint on an actively faulted block legitimately
    // keeps its leaf alive until the next flush).
    let quiet = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let faulter = {
        let tree = tree.clone();
        let stop = stop.clone();
        let quiet = quiet.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let base = if quiet.load(std::sync::atomic::Ordering::Relaxed) {
                    stable
                } else {
                    block
                };
                let vpn = base + (i % 8);
                i += 1;
                let mut g = tree.lock_range(1, vpn, vpn + 1, LockMode::ExpandFolded);
                if let Some(v) = g.page_value_mut() {
                    // Only the mapper's generation markers may ever be
                    // visible; a freed/stale node would surface garbage.
                    assert!(*v == 7 || *v == 9, "hint served stale value {v}");
                }
                drop(g);
                if i.is_multiple_of(32) {
                    tree.cache().maintain(1);
                }
            }
        })
    };
    let rel = std::sync::atomic::Ordering::Relaxed;
    for round in 0..200u64 {
        tree.lock_range(0, block, block + 512, LockMode::ExpandFolded)
            .clear();
        if round % 10 == 0 {
            // Death window: steer the faulter away and keep flushing
            // until the emptied leaf (and its spine) actually collapse —
            // the faulter's own maintenance ticks advance the epoch from
            // its side.
            quiet.store(true, rel);
            let before = tree.stats().nodes_collapsed();
            for _ in 0..500 {
                tree.cache().maintain(0);
                if tree.stats().nodes_collapsed() > before {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
            quiet.store(false, rel);
        }
        let marker = if round % 2 == 0 { 7 } else { 9 };
        tree.lock_range(0, block, block + 512, LockMode::ExpandAll)
            .replace(&marker);
        // Leave the block mapped long enough for the faulter to take
        // repeated (hinted) faults in it before the next churn round.
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    faulter.join().unwrap();
    assert!(tree.stats().hint_hits() > 0, "hints never exercised");
    assert!(
        tree.stats().nodes_collapsed() > 0,
        "no node ever died — the dangerous interleaving was not exercised"
    );
    // Everything still collapses: hint pins are surrendered at flush.
    tree.lock_range(0, block, block + 512, LockMode::ExpandFolded)
        .clear();
    tree.lock_range(0, stable, stable + 512, LockMode::ExpandFolded)
        .clear();
    let tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.cache().quiesce();
    assert_eq!(tree.cache().live_objects(), 1, "only the root survives");
}

/// The list-based range lock's precision claim, on real threads: while
/// one thread holds a multi-page range of a VMA, a *disjoint* sub-range
/// of the same VMA is acquired and released immediately (no coarse
/// serialization), while an *overlapping* sub-range blocks until the
/// holder releases — and is never lost (no missed wakeup: the waiter
/// spins on the holder's descriptor and observes its mark).
#[test]
fn disjoint_subranges_progress_under_list_range_lock() {
    let cache = Arc::new(Refcache::new(3));
    let tree = Arc::new(RadixTree::<u64>::new(cache, RadixConfig::default()));
    assert_eq!(tree.range_lock_kind(), RangeLockKind::List);
    let base = 512 * 3;
    // Pre-expand the block to a leaf: a freshly expanded node is born
    // with every slot lock held by its creator, which would serialize
    // the two sub-ranges below for a reason unrelated to the range lock.
    tree.lock_range(0, base, base + 16, LockMode::ExpandAll)
        .replace(&0);
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
    let holder = {
        let tree = tree.clone();
        std::thread::spawn(move || {
            let g = tree.lock_range(0, base, base + 8, LockMode::ExpandAll);
            held_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            drop(g);
        })
    };
    held_rx.recv().unwrap();
    // A disjoint sub-range of the same VMA completes while [base, base+8)
    // is held. If this deadlocked, the whole test would hang.
    tree.lock_range(1, base + 8, base + 16, LockMode::ExpandAll)
        .replace(&1);
    // An overlapping sub-range must block until the holder releases.
    let overlapper = {
        let tree = tree.clone();
        std::thread::spawn(move || {
            tree.lock_range(2, base + 4, base + 12, LockMode::ExpandAll)
                .replace(&2);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !overlapper.is_finished(),
        "overlapping range acquired while a conflicting range was held"
    );
    release_tx.send(()).unwrap();
    holder.join().unwrap();
    overlapper.join().unwrap();
}

/// Mixed overlapping traffic on every backend survives and stays
/// stale-free.
#[test]
fn overlapping_stress_all_backends() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(4);
        let vm = build(&machine, kind);
        for c in 0..4 {
            vm.attach_core(c);
        }
        let mut handles = Vec::new();
        for core in 0..4usize {
            let machine = machine.clone();
            let vm = vm.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = core as u64 + 9;
                for i in 0..250u64 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let lo = rng % 24;
                    let len = 1 + (rng >> 8) % 6;
                    let addr = BASE + lo * PAGE_SIZE;
                    match rng % 3 {
                        0 => {
                            vm.mmap(core, addr, len * PAGE_SIZE, Prot::RW, Backing::Anon)
                                .unwrap();
                        }
                        1 => {
                            vm.munmap(core, addr, len * PAGE_SIZE).unwrap();
                        }
                        _ => match machine.write_u64(core, &*vm, addr, i) {
                            Ok(()) | Err(VmError::NoMapping) => {}
                            Err(e) => panic!("{}: unexpected {e}", vm.name()),
                        },
                    }
                    if i % 64 == 0 {
                        vm.maintain(core);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            machine.stats().stale_detected,
            0,
            "{} leaked a stale translation",
            vm.name()
        );
    }
}
