//! Backend conformance: every [`BackendKind`] must sustain the same VM
//! lifecycle — mmap → write → read → munmap → fault-after-unmap — on a
//! single core, across cores, and under real threads.
//!
//! This is the contract the backend layer advertises: code written
//! against `Arc<dyn VmSystem>` behaves identically on RadixVM, its
//! ablations, the baselines, and the toy reference backend; only the
//! performance differs. Each test loops over `BackendKind::ALL`, so a new
//! backend is covered the moment it is added to the enum.

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::hw::{Backing, Machine, MapFlags, Prot, VmError, VmSystem, BLOCK_PAGES, PAGE_SIZE};

const BASE: u64 = 0x50_0000_0000;

/// One full lifecycle on `core`, in its own address range.
fn lifecycle(machine: &Arc<Machine>, vm: &Arc<dyn VmSystem>, core: usize, kind: BackendKind) {
    let base = BASE + core as u64 * (1 << 30);
    let pages = 8u64;
    // mmap
    vm.mmap(core, base, pages * PAGE_SIZE, Prot::RW, Backing::Anon)
        .unwrap_or_else(|e| panic!("{kind}: mmap failed: {e}"));
    // write every page
    for p in 0..pages {
        machine
            .write_u64(core, &**vm, base + p * PAGE_SIZE, 0xC0DE + p)
            .unwrap_or_else(|e| panic!("{kind}: write failed: {e}"));
    }
    // read every page back
    for p in 0..pages {
        let v = machine
            .read_u64(core, &**vm, base + p * PAGE_SIZE)
            .unwrap_or_else(|e| panic!("{kind}: read failed: {e}"));
        assert_eq!(v, 0xC0DE + p, "{kind}: page {p} corrupted");
    }
    // munmap
    vm.munmap(core, base, pages * PAGE_SIZE)
        .unwrap_or_else(|e| panic!("{kind}: munmap failed: {e}"));
    // fault-after-unmap: every page must be gone, not stale
    for p in 0..pages {
        assert_eq!(
            machine.read_u64(core, &**vm, base + p * PAGE_SIZE),
            Err(VmError::NoMapping),
            "{kind}: page {p} survived munmap"
        );
    }
}

#[test]
fn lifecycle_single_core() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(1);
        let vm = build(&machine, kind);
        vm.attach_core(0);
        lifecycle(&machine, &vm, 0, kind);
        vm.quiesce();
    }
}

#[test]
fn lifecycle_every_core_in_turn() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(4);
        let vm = build(&machine, kind);
        for c in 0..4 {
            vm.attach_core(c);
        }
        for c in 0..4 {
            lifecycle(&machine, &vm, c, kind);
        }
        vm.quiesce();
    }
}

#[test]
fn lifecycle_multi_core_threaded() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(4);
        let vm = build(&machine, kind);
        for c in 0..4 {
            vm.attach_core(c);
        }
        let mut handles = Vec::new();
        for core in 0..4usize {
            let machine = machine.clone();
            let vm = vm.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    lifecycle(&machine, &vm, core, kind);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            machine.stats().stale_detected,
            0,
            "{kind}: stale translation under threads"
        );
        vm.quiesce();
    }
}

#[test]
fn cross_core_visibility() {
    // A write on core 0 is visible from every other core (per-core-table
    // backends take fill faults; shared-table backends hit the PTE).
    for kind in BackendKind::ALL {
        let machine = Machine::new(4);
        let vm = build(&machine, kind);
        for c in 0..4 {
            vm.attach_core(c);
        }
        vm.mmap(0, BASE, PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        machine.write_u64(0, &*vm, BASE, 31337).unwrap();
        for c in 1..4 {
            assert_eq!(
                machine.read_u64(c, &*vm, BASE).unwrap(),
                31337,
                "{kind}: core {c} sees a different value"
            );
        }
        // Unmap from a core that never wrote: the translation must die
        // everywhere.
        vm.munmap(3, BASE, PAGE_SIZE).unwrap();
        for c in 0..4 {
            assert_eq!(
                machine.read_u64(c, &*vm, BASE),
                Err(VmError::NoMapping),
                "{kind}: core {c} kept a stale view"
            );
        }
        vm.quiesce();
    }
}

#[test]
fn demand_zero_and_protection() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(1);
        let vm = build(&machine, kind);
        vm.attach_core(0);
        // Fresh anonymous memory reads zero.
        vm.mmap(0, BASE, 2 * PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        assert_eq!(machine.read_u64(0, &*vm, BASE).unwrap(), 0, "{kind}");
        // Read-only mappings reject writes.
        vm.mmap(0, BASE + (1 << 24), PAGE_SIZE, Prot::READ, Backing::Anon)
            .unwrap();
        assert_eq!(
            machine.write_u64(0, &*vm, BASE + (1 << 24), 1),
            Err(VmError::ProtViolation),
            "{kind}"
        );
        vm.quiesce();
    }
}

#[test]
fn bad_ranges_rejected() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(1);
        let vm = build(&machine, kind);
        vm.attach_core(0);
        for (addr, len) in [
            (BASE + 1, PAGE_SIZE),                     // unaligned base
            (BASE, PAGE_SIZE + 7),                     // unaligned length
            (BASE, 0),                                 // empty
            (u64::MAX - PAGE_SIZE + 1, 2 * PAGE_SIZE), // overflow
        ] {
            assert_eq!(
                vm.mmap(0, addr, len, Prot::RW, Backing::Anon),
                Err(VmError::BadRange),
                "{kind}: accepted bad mmap({addr:#x}, {len})"
            );
        }
        assert_eq!(vm.munmap(0, BASE, 0), Err(VmError::BadRange), "{kind}");
    }
}

#[test]
fn names_and_metadata_consistent() {
    for kind in BackendKind::ALL {
        let machine = Machine::new(1);
        let vm = build(&machine, kind);
        assert_eq!(vm.name(), kind.name(), "factory/metadata name mismatch");
        assert_eq!(BackendKind::parse(kind.name()), Some(kind));
    }
}

#[test]
fn op_stats_exact_under_concurrent_disjoint_ops() {
    // Operation counters are sharded per core (one padded cell each);
    // this is the lost-update check: four cores hammering disjoint
    // ranges in parallel must produce *exact* totals — a counter that
    // dropped or double-counted a relaxed increment would show here.
    const THREADS: u64 = 4;
    const ITERS: u64 = 50;
    const PAGES: u64 = 4;
    for kind in BackendKind::ALL {
        let machine = Machine::new(THREADS as usize);
        let vm = build(&machine, kind);
        for c in 0..THREADS as usize {
            vm.attach_core(c);
        }
        let mut handles = Vec::new();
        for core in 0..THREADS as usize {
            let machine = machine.clone();
            let vm = vm.clone();
            handles.push(std::thread::spawn(move || {
                let base = BASE + core as u64 * (1 << 30);
                for _ in 0..ITERS {
                    vm.mmap(core, base, PAGES * PAGE_SIZE, Prot::RW, Backing::Anon)
                        .unwrap();
                    for p in 0..PAGES {
                        machine
                            .write_u64(core, &*vm, base + p * PAGE_SIZE, p)
                            .unwrap();
                    }
                    vm.munmap(core, base, PAGES * PAGE_SIZE).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let st = vm.op_stats();
        assert_eq!(st.mmaps, THREADS * ITERS, "{kind}: lost mmap counts");
        assert_eq!(st.munmaps, THREADS * ITERS, "{kind}: lost munmap counts");
        // Disjoint ranges: every touch of a freshly mapped page is
        // exactly one fault (no install races, no retries).
        assert_eq!(
            st.faults_alloc + st.faults_fill + st.faults_cow,
            THREADS * ITERS * PAGES,
            "{kind}: lost fault counts"
        );
        assert_eq!(st.faults_cow, 0, "{kind}: spurious CoW faults");
        vm.quiesce();
    }
}

#[test]
fn huge_hint_is_semantics_preserving() {
    // The MapFlags::HUGE hint is advisory: on every backend — whether it
    // installs superpages, or ignores the hint entirely — reads,
    // protection behavior, partial unmap, and cross-core visibility are
    // identical with and without it. Two aligned regions, one hinted,
    // driven through the same script; every observation must match.
    let hinted_base = 0x60_0000_0000u64; // 2 MiB aligned
    let plain_base = hinted_base + 8 * BLOCK_PAGES * PAGE_SIZE;
    let len = BLOCK_PAGES * PAGE_SIZE;
    for kind in BackendKind::ALL {
        let machine = Machine::new(2);
        let vm = build(&machine, kind);
        vm.attach_core(0);
        vm.attach_core(1);
        vm.mmap_flags(0, hinted_base, len, Prot::RW, Backing::Anon, MapFlags::HUGE)
            .unwrap_or_else(|e| panic!("{kind}: hinted mmap failed: {e}"));
        vm.mmap_flags(0, plain_base, len, Prot::RW, Backing::Anon, MapFlags::NONE)
            .unwrap();
        let script: Vec<u64> = (0..BLOCK_PAGES)
            .step_by(31)
            .chain([BLOCK_PAGES - 1])
            .collect();
        // Demand-zero, then write/read the same pattern on both.
        for &p in &script {
            for (base, tag) in [(hinted_base, 1u64), (plain_base, 2)] {
                let va = base + p * PAGE_SIZE;
                assert_eq!(machine.read_u64(0, &*vm, va).unwrap(), 0, "{kind}");
                machine.write_u64(0, &*vm, va, tag << 32 | p).unwrap();
            }
        }
        // Cross-core visibility matches.
        for &p in &script {
            assert_eq!(
                machine
                    .read_u64(1, &*vm, hinted_base + p * PAGE_SIZE)
                    .unwrap(),
                1 << 32 | p,
                "{kind}: hinted page {p} wrong on core 1"
            );
            assert_eq!(
                machine
                    .read_u64(1, &*vm, plain_base + p * PAGE_SIZE)
                    .unwrap(),
                2 << 32 | p,
                "{kind}: plain page {p} wrong on core 1"
            );
        }
        // Protection downgrades behave identically. (Whether contents
        // survive the revoke is backend policy — the Linux/Bonsai
        // baselines drop them — but the hinted region must do exactly
        // what the plain one does.)
        for base in [hinted_base, plain_base] {
            vm.mprotect(0, base, len, Prot::READ).unwrap();
            assert_eq!(
                machine.write_u64(0, &*vm, base, 9),
                Err(VmError::ProtViolation),
                "{kind}"
            );
        }
        let hinted_v = machine.read_u64(1, &*vm, hinted_base).unwrap();
        let plain_v = machine.read_u64(1, &*vm, plain_base).unwrap();
        assert_eq!(
            hinted_v & 0xFFFF_FFFF,
            plain_v & 0xFFFF_FFFF,
            "{kind}: hinted mprotect diverged from plain"
        );
        assert_eq!(
            hinted_v >> 32 != 0,
            plain_v >> 32 != 0,
            "{kind}: content survival differs with the hint"
        );
        for base in [hinted_base, plain_base] {
            vm.mprotect(0, base, len, Prot::RW).unwrap();
        }
        // Restore the pattern (backends that drop contents on revoke
        // refill demand-zero).
        for &p in &script {
            for (base, tag) in [(hinted_base, 1u64), (plain_base, 2)] {
                machine
                    .write_u64(0, &*vm, base + p * PAGE_SIZE, tag << 32 | p)
                    .unwrap();
            }
        }
        // Partial unmap: identical survivors and holes.
        for base in [hinted_base, plain_base] {
            vm.munmap(0, base + 64 * PAGE_SIZE, 64 * PAGE_SIZE).unwrap();
            assert_eq!(
                machine.read_u64(0, &*vm, base + 64 * PAGE_SIZE),
                Err(VmError::NoMapping),
                "{kind}"
            );
        }
        for &p in &script {
            if (64..128).contains(&p) {
                continue;
            }
            assert_eq!(
                machine
                    .read_u64(0, &*vm, hinted_base + p * PAGE_SIZE)
                    .unwrap(),
                1 << 32 | p,
                "{kind}: hinted page {p} lost after partial unmap"
            );
        }
        vm.munmap(0, hinted_base, len).unwrap();
        vm.munmap(0, plain_base, len).unwrap();
        vm.quiesce();
        assert_eq!(machine.stats().stale_detected, 0, "{kind}");
    }
}

#[test]
fn no_backend_leaks_frames_after_quiesce_and_drop() {
    // The frame table is the single ownership authority: after a mixed
    // workload — 4 KiB and huge mappings, partial unmaps (superpage
    // demotion on backends that install them), CoW-forked address
    // spaces — every backend must end with allocated − freed == 0
    // frames once the VMs quiesce and drop. `outstanding_frames` is the
    // pool's own alloc/free page accounting, so a reference leak
    // anywhere (metadata, demotion adoption, fork duplication, drop
    // paths) shows up as a nonzero residue.
    let base_4k = BASE;
    let huge_base = 0x58_0000_0000u64; // 2 MiB aligned
    for kind in BackendKind::ALL {
        let machine = Machine::new(2);
        {
            let vm = build(&machine, kind);
            vm.attach_core(0);
            vm.attach_core(1);
            // Plain 4 KiB pages, touched from both cores.
            vm.mmap(0, base_4k, 16 * PAGE_SIZE, Prot::RW, Backing::Anon)
                .unwrap();
            for p in 0..16 {
                machine
                    .write_u64(0, &*vm, base_4k + p * PAGE_SIZE, p)
                    .unwrap();
            }
            for p in 0..16 {
                machine.read_u64(1, &*vm, base_4k + p * PAGE_SIZE).unwrap();
            }
            // A hinted 2 MiB region, partially unmapped (demotes the
            // superpage where one was installed).
            vm.mmap_flags(
                0,
                huge_base,
                BLOCK_PAGES * PAGE_SIZE,
                Prot::RW,
                Backing::Anon,
                MapFlags::HUGE,
            )
            .unwrap();
            for p in (0..BLOCK_PAGES).step_by(47) {
                machine
                    .write_u64(0, &*vm, huge_base + p * PAGE_SIZE, p)
                    .unwrap();
            }
            vm.munmap(0, huge_base + 64 * PAGE_SIZE, 64 * PAGE_SIZE)
                .unwrap();
            machine.read_u64(1, &*vm, huge_base).unwrap();
            // Fork + CoW on the backends that support it: both address
            // spaces write (copying shared pages), then the child drops
            // with mappings still live.
            if kind.meta().supports_fork {
                let child = vm.fork(0).unwrap();
                child.attach_core(0);
                child.attach_core(1);
                machine.write_u64(1, &*child, base_4k, 999).unwrap();
                machine
                    .write_u64(0, &*vm, base_4k + PAGE_SIZE, 888)
                    .unwrap();
                machine.write_u64(1, &*child, huge_base, 777).unwrap();
                child.quiesce();
                drop(child);
            }
            // Unmap part of the 4 KiB region explicitly; the VM's drop
            // path must release the rest.
            vm.munmap(0, base_4k, 8 * PAGE_SIZE).unwrap();
            vm.quiesce();
            drop(vm);
        }
        machine.pool().flush_magazines();
        assert_eq!(
            machine.pool().outstanding_frames(),
            0,
            "{kind}: frames leaked (allocated != freed after quiesce + drop)"
        );
        assert_eq!(machine.stats().stale_detected, 0, "{kind}");
    }
}

#[test]
fn frames_return_to_pool_after_unmap() {
    // After a full map/touch/unmap cycle and quiesce, every allocated
    // frame is back in the pool — no backend leaks physical memory.
    for kind in BackendKind::ALL {
        let machine = Machine::new(2);
        let vm = build(&machine, kind);
        vm.attach_core(0);
        vm.attach_core(1);
        let pages = 16u64;
        vm.mmap(0, BASE, pages * PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        for p in 0..pages {
            machine.write_u64(0, &*vm, BASE + p * PAGE_SIZE, p).unwrap();
        }
        vm.munmap(0, BASE, pages * PAGE_SIZE).unwrap();
        vm.quiesce();
        let st = machine.pool().stats();
        assert_eq!(
            st.local_frees + st.remote_frees,
            pages,
            "{kind}: frames leaked after munmap"
        );
    }
}
