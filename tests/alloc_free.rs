//! Acceptance test for the fault fast path: after warm-up, single-page
//! fault handling performs **zero heap allocations** — the guard's unit
//! and pin storage is inline, the leaf hint skips the descent, and
//! nothing on the PTE/TLB refill path allocates.
//!
//! Lives in its own integration-test binary because it installs a
//! counting global allocator, and contains a single #[test] so no
//! concurrent test can perturb the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radixvm::backend::{build, BackendKind};
use radixvm::hw::{Backing, Machine, Prot, PAGE_SIZE};
use radixvm::radix::{LockMode, RadixConfig, RadixTree};
use radixvm::refcache::Refcache;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to the system allocator; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const BASE: u64 = 0x70_0000_0000;

/// Runs `work` (a 10k-operation loop) in up to five measurement windows
/// and requires at least one window with zero allocations. The counter
/// is process-global, and the libtest harness's main thread may allocate
/// concurrently (printing the test-start event) during the first window;
/// a genuine fault-path allocation would taint *every* window, so one
/// clean window proves the path allocation-free.
fn assert_allocation_free(label: &str, mut work: impl FnMut()) {
    let mut last = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        work();
        last = ALLOCS.load(Ordering::Relaxed) - before;
        if last == 0 {
            return;
        }
    }
    panic!("{label}: every window allocated (last saw {last} allocations)");
}

#[test]
fn warm_single_page_fault_path_is_allocation_free() {
    // Phase 1: the radix-tree component alone — single-page range lock +
    // metadata mutation, the tree work of every page fault.
    {
        let cache = std::sync::Arc::new(Refcache::new(1));
        let tree = RadixTree::<u64>::new(cache, RadixConfig::default());
        let base = 512 * 11;
        tree.lock_range(0, base, base + 512, LockMode::ExpandAll)
            .replace(&1);
        // Warm-up: expands the folded block to a leaf, installs the hint.
        for i in 0..16u64 {
            let vpn = base + (i % 8);
            let mut g = tree.lock_range(0, vpn, vpn + 1, LockMode::ExpandFolded);
            *g.page_value_mut().expect("mapped") += 1;
        }
        // Drain warm-up residue from the Refcache delta cache and review
        // queue (a leftover warm-up delta in the hash slot the leaf maps
        // to would otherwise be conflict-evicted — and possibly queued —
        // on the first measured fault), then re-warm the hint.
        tree.cache().quiesce();
        for i in 0..16u64 {
            let vpn = base + (i % 8);
            let mut g = tree.lock_range(0, vpn, vpn + 1, LockMode::ExpandFolded);
            *g.page_value_mut().expect("mapped") += 1;
        }
        assert_allocation_free("tree fault path", || {
            for i in 0..10_000u64 {
                let vpn = base + (i % 8);
                let mut g = tree.lock_range(0, vpn, vpn + 1, LockMode::ExpandFolded);
                *g.page_value_mut().expect("mapped") += 1;
            }
        });
        assert_allocation_free("tree lookup path", || {
            for i in 0..10_000u64 {
                assert!(tree.get(0, base + (i % 8)).is_some());
                assert!(tree.lookup_present(0, base + (i % 8)));
            }
        });
    }

    // Phase 2: the full stack — TLB invalidate + access → pagefault →
    // range lock → PTE install → TLB fill, repeated in one block.
    let machine = Machine::new(1);
    let vm = build(&machine, BackendKind::Radix);
    vm.attach_core(0);
    vm.mmap(0, BASE, 8 * PAGE_SIZE, Prot::RW, Backing::Anon)
        .unwrap();
    for p in 0..8u64 {
        machine
            .touch_page(0, &*vm, BASE + p * PAGE_SIZE, 1)
            .unwrap();
    }
    // Warm-up: page tables and TLB structures exist, hint installed;
    // then drain warm-up residue (see phase 1) and re-warm the hint.
    for i in 0..64u64 {
        let vpn = (BASE >> 12) + (i % 8);
        machine.invalidate_local(0, vm.asid(), vpn, 1);
        machine
            .read_u64(0, &*vm, BASE + (i % 8) * PAGE_SIZE)
            .unwrap();
    }
    vm.quiesce();
    for i in 0..64u64 {
        let vpn = (BASE >> 12) + (i % 8);
        machine.invalidate_local(0, vm.asid(), vpn, 1);
        machine
            .read_u64(0, &*vm, BASE + (i % 8) * PAGE_SIZE)
            .unwrap();
    }
    assert_allocation_free("full fault path", || {
        for i in 0..10_000u64 {
            let vpn = (BASE >> 12) + (i % 8);
            machine.invalidate_local(0, vm.asid(), vpn, 1);
            machine
                .read_u64(0, &*vm, BASE + (i % 8) * PAGE_SIZE)
                .unwrap();
        }
    });

    // Phase 3: the COLD fault path — demand-zero populating a fresh page
    // (frame off the core-local free list, count cell armed in the frame
    // table, PTE + TLB install) performs zero heap allocations too, now
    // that no per-fault Refcache object exists (DESIGN.md §8). The
    // region's radix leaves, page-table nodes, TLB structures, and pool
    // free lists are pre-built; between windows the mapping is replaced
    // in place (displacing the frames but keeping every leaf populated)
    // and the VM quiesced, so each window's faults are genuinely cold —
    // asserted via the faults_alloc counter — yet allocation-free.
    const COLD_BASE: u64 = 0x71_0000_0000;
    const COLD_PAGES: u64 = 2048;
    vm.mmap(
        0,
        COLD_BASE,
        COLD_PAGES * PAGE_SIZE,
        Prot::RW,
        Backing::Anon,
    )
    .unwrap();
    for p in 0..COLD_PAGES {
        machine
            .touch_page(0, &*vm, COLD_BASE + p * PAGE_SIZE, 1)
            .unwrap();
    }
    let mut clean = false;
    let mut last = u64::MAX;
    for _ in 0..5 {
        // Displace the frames; leaves stay populated (replace swaps
        // values in place), so the next faults re-allocate cold.
        vm.mmap(
            0,
            COLD_BASE,
            COLD_PAGES * PAGE_SIZE,
            Prot::RW,
            Backing::Anon,
        )
        .unwrap();
        vm.quiesce();
        let fa0 = vm.op_stats().faults_alloc;
        let before = ALLOCS.load(Ordering::Relaxed);
        for p in 0..COLD_PAGES {
            machine
                .read_u64(0, &*vm, COLD_BASE + p * PAGE_SIZE)
                .unwrap();
        }
        last = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            vm.op_stats().faults_alloc - fa0,
            COLD_PAGES,
            "window faults must be cold page-allocating faults"
        );
        if last == 0 {
            clean = true;
            break;
        }
    }
    assert!(
        clean,
        "cold fault path: every window allocated (last saw {last} allocations)"
    );
}
