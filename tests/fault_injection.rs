//! Deterministic fault-injection sweep: memory exhaustion as a
//! first-class, survivable condition (DESIGN.md §11).
//!
//! Three contracts, on every backend × placement policy:
//!
//! 1. **Typed failure, never a panic**: with allocation failpoints
//!    armed (or the pool capped), faulting ops return
//!    `Err(VmError::OutOfMemory)`.
//! 2. **Exact unwind**: a failed op installs nothing and leaks nothing
//!    — after unmap + quiesce + magazine flush,
//!    `outstanding_frames() == 0`.
//! 3. **Full recovery**: the same op succeeds once pressure lifts
//!    (failpoint disarmed, or frames freed).
//!
//! The failpoint registry is thread-local and every VM op here runs on
//! the test's own thread, so concurrently running tests never observe
//! each other's schedules.

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::hw::Machine;
use radixvm::hw::{
    Backing, MachineConfig, MapFlags, PlacementPolicy, Prot, VmError, VmSystem, BLOCK_PAGES,
    PAGE_SIZE,
};
use radixvm::sync::failpoint::{self, Trigger};
use radixvm::sync::Topology;

const BASE: u64 = 0x61_0000_0000;
const NCORES: usize = 4;

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::FirstTouch,
    PlacementPolicy::Interleave,
    PlacementPolicy::ReplicateReadOnly,
];

fn numa_machine(policy: PlacementPolicy) -> Arc<Machine> {
    let mut cfg = MachineConfig::new(NCORES);
    cfg.placement = policy;
    cfg.topology = Topology::striped(2);
    Machine::with_config(cfg)
}

fn assert_clean(machine: &Machine, ctx: &str) {
    machine.pool().flush_magazines();
    assert_eq!(
        machine.pool().outstanding_frames(),
        0,
        "{ctx}: frames leaked after unwind"
    );
}

/// Failpoints at the single-frame and chunk-growth sites, each failed
/// in turn: every backend × placement policy surfaces
/// `Err(VmError::OutOfMemory)` (no panic), unwinds exactly, and serves
/// the identical op after disarm.
#[test]
fn injection_sweep_frame_sites_fail_typed_and_recover() {
    // `chunk-grow` only guarantees failure while nothing is recyclable,
    // so each (site, backend, policy) cell gets a fresh machine.
    for site in [failpoint::FRAME_ALLOC, failpoint::CHUNK_GROW] {
        for kind in BackendKind::ALL {
            for policy in POLICIES {
                failpoint::disarm_all();
                let ctx = format!("{site}/{kind}/{policy:?}");
                let machine = numa_machine(policy);
                {
                    let vm: Arc<dyn VmSystem> = build(&machine, kind);
                    for core in 0..NCORES {
                        vm.attach_core(core);
                    }
                    vm.mmap(0, BASE, 8 * PAGE_SIZE, Prot::RW, Backing::Anon)
                        .unwrap_or_else(|e| panic!("{ctx}: mmap: {e}"));
                    failpoint::arm_all(site, NCORES, Trigger::EveryK(1));
                    for core in 0..NCORES {
                        assert_eq!(
                            machine.write_u64(core, &*vm, BASE + core as u64 * PAGE_SIZE, 7),
                            Err(VmError::OutOfMemory),
                            "{ctx}: core {core} fault must fail typed"
                        );
                    }
                    // Pressure relief: the exact same accesses succeed.
                    failpoint::disarm_all();
                    for core in 0..NCORES {
                        machine
                            .write_u64(core, &*vm, BASE + core as u64 * PAGE_SIZE, 7)
                            .unwrap_or_else(|e| panic!("{ctx}: post-relief write: {e}"));
                    }
                    let oom = vm.op_stats().oom_faults;
                    assert_eq!(oom, NCORES as u64, "{ctx}: oom_faults miscounted");
                    vm.munmap(0, BASE, 8 * PAGE_SIZE)
                        .unwrap_or_else(|e| panic!("{ctx}: munmap: {e}"));
                    vm.quiesce();
                }
                assert_clean(&machine, &ctx);
            }
        }
    }
    failpoint::disarm_all();
}

/// Capacity exhaustion without failpoints: cap the pool, fault until it
/// runs dry, then free frames and watch the same fault succeed.
#[test]
fn capacity_exhaustion_unwinds_and_recovers_after_relief() {
    for kind in BackendKind::ALL {
        for policy in POLICIES {
            let ctx = format!("{kind}/{policy:?}");
            let machine = numa_machine(policy);
            {
                let vm: Arc<dyn VmSystem> = build(&machine, kind);
                vm.attach_core(0);
                let pages = 96u64;
                vm.mmap(0, BASE, pages * PAGE_SIZE, Prot::RW, Backing::Anon)
                    .unwrap_or_else(|e| panic!("{ctx}: mmap: {e}"));
                machine.pool().set_frame_limit(64);
                // Fault until the pool runs dry; the boundary depends on
                // the policy's placement choices, but the typed failure
                // must appear before the mapping is fully populated.
                let mut failed_at = None;
                for p in 0..pages {
                    match machine.write_u64(0, &*vm, BASE + p * PAGE_SIZE, p) {
                        Ok(()) => {}
                        Err(VmError::OutOfMemory) => {
                            failed_at = Some(p);
                            break;
                        }
                        Err(e) => panic!("{ctx}: unexpected error {e}"),
                    }
                }
                let failed_at =
                    failed_at.unwrap_or_else(|| panic!("{ctx}: capped pool never ran dry"));
                assert!(
                    vm.op_stats().oom_faults >= 1,
                    "{ctx}: oom_faults not counted"
                );
                // Relief: unmap the first 16 pages to free their frames,
                // then fault a still-mapped, still-unpopulated page (the
                // failed one, unless it fell inside the relieved range).
                vm.munmap(0, BASE, 16 * PAGE_SIZE)
                    .unwrap_or_else(|e| panic!("{ctx}: relief munmap: {e}"));
                vm.quiesce();
                machine.pool().flush_magazines();
                let retry = failed_at.max(16);
                machine
                    .write_u64(0, &*vm, BASE + retry * PAGE_SIZE, retry)
                    .unwrap_or_else(|e| panic!("{ctx}: fault after relief: {e}"));
                assert_eq!(
                    machine.read_u64(0, &*vm, BASE + retry * PAGE_SIZE),
                    Ok(retry),
                    "{ctx}: recovered page lost its data"
                );
                vm.munmap(0, BASE + 16 * PAGE_SIZE, (pages - 16) * PAGE_SIZE)
                    .unwrap_or_else(|e| panic!("{ctx}: final munmap: {e}"));
                vm.quiesce();
            }
            assert_clean(&machine, &ctx);
        }
    }
}

/// Superpage graceful degradation: with the block-allocation site
/// armed, a huge-hinted populate falls back to scattered 4 KiB pages —
/// the access *succeeds*, `block_fallbacks` counts it, and no
/// contiguous block is ever taken.
#[test]
fn block_alloc_failure_degrades_to_scattered_pages() {
    failpoint::disarm_all();
    for policy in POLICIES {
        let ctx = format!("Radix/{policy:?}");
        let machine = numa_machine(policy);
        {
            let vm: Arc<dyn VmSystem> = build(&machine, BackendKind::Radix);
            vm.attach_core(0);
            let len = BLOCK_PAGES * PAGE_SIZE;
            vm.mmap_flags(0, BASE, len, Prot::RW, Backing::Anon, MapFlags::HUGE)
                .unwrap_or_else(|e| panic!("{ctx}: mmap_flags: {e}"));
            failpoint::arm_all(failpoint::BLOCK_ALLOC, NCORES, Trigger::EveryK(1));
            for p in 0..BLOCK_PAGES {
                machine
                    .write_u64(0, &*vm, BASE + p * PAGE_SIZE, p)
                    .unwrap_or_else(|e| panic!("{ctx}: scatter-fallback write: {e}"));
            }
            failpoint::disarm_all();
            let stats = vm.op_stats();
            assert!(
                stats.block_fallbacks >= 1,
                "{ctx}: fallback not counted ({stats:?})"
            );
            assert_eq!(stats.oom_faults, 0, "{ctx}: fallback must not surface OOM");
            assert_eq!(
                stats.superpage_installs, 0,
                "{ctx}: superpage installed despite armed block-alloc"
            );
            assert_eq!(
                machine.pool().stats().block_allocs,
                0,
                "{ctx}: a contiguous block was taken"
            );
            for p in (0..BLOCK_PAGES).step_by(97) {
                assert_eq!(
                    machine.read_u64(0, &*vm, BASE + p * PAGE_SIZE),
                    Ok(p),
                    "{ctx}: scattered page lost its data"
                );
            }
            // With the failpoint gone, a second huge mapping gets a
            // real superpage again.
            let base2 = BASE + 2 * len;
            vm.mmap_flags(0, base2, len, Prot::RW, Backing::Anon, MapFlags::HUGE)
                .unwrap_or_else(|e| panic!("{ctx}: second mmap_flags: {e}"));
            machine
                .write_u64(0, &*vm, base2, 1)
                .unwrap_or_else(|e| panic!("{ctx}: superpage write: {e}"));
            assert!(
                vm.op_stats().superpage_installs >= 1,
                "{ctx}: superpage path did not recover after disarm"
            );
            vm.munmap(0, BASE, len).unwrap();
            vm.munmap(0, base2, len).unwrap();
            vm.quiesce();
        }
        assert_clean(&machine, &ctx);
    }
}

/// Promotion graceful degradation (DESIGN.md §12): with the `promote`
/// site armed, convergence sweeps keep crossing the fill threshold but
/// every promotion attempt aborts before taking any lock — the mapping
/// stays valid at 4 KiB, no block is allocated, no data moves, and no
/// frame leaks. Once disarmed, the very next convergence promotes.
#[test]
fn promotion_failure_leaves_4k_mapping_intact() {
    failpoint::disarm_all();
    let machine = numa_machine(PlacementPolicy::FirstTouch);
    let ctx = "Radix/promote-failpoint";
    {
        let vm: Arc<dyn VmSystem> = build(&machine, BackendKind::Radix);
        vm.attach_core(0);
        let len = BLOCK_PAGES * PAGE_SIZE;
        vm.mmap_flags(0, BASE, len, Prot::RW, Backing::Anon, MapFlags::HUGE)
            .unwrap_or_else(|e| panic!("{ctx}: mmap_flags: {e}"));
        // Populate scattered: armed block-alloc degrades the hinted
        // fill to 4 KiB frames and vetoes migration-promotion too.
        failpoint::arm(failpoint::BLOCK_ALLOC, 0, Trigger::EveryK(1));
        for p in 0..BLOCK_PAGES {
            machine
                .write_u64(0, &*vm, BASE + p * PAGE_SIZE, 0x1000 + p)
                .unwrap_or_else(|e| panic!("{ctx}: scattered populate: {e}"));
        }
        failpoint::disarm_all();
        assert_eq!(vm.op_stats().superpage_promotions, 0, "{ctx}");
        assert_eq!(machine.pool().stats().block_allocs, 0, "{ctx}");

        // Refault sweep with the promote site armed: every threshold
        // crossing attempts promotion, every attempt aborts.
        failpoint::arm(failpoint::PROMOTE, 0, Trigger::EveryK(1));
        vm.mprotect(0, BASE, len, Prot::READ)
            .unwrap_or_else(|e| panic!("{ctx}: mprotect READ: {e}"));
        vm.mprotect(0, BASE, len, Prot::RW)
            .unwrap_or_else(|e| panic!("{ctx}: mprotect RW: {e}"));
        for p in 0..BLOCK_PAGES {
            assert_eq!(
                machine.read_u64(0, &*vm, BASE + p * PAGE_SIZE),
                Ok(0x1000 + p),
                "{ctx}: page {p} lost under aborted promotion"
            );
        }
        let attempts = failpoint::hits(failpoint::PROMOTE, 0);
        assert!(
            attempts >= BLOCK_PAGES / 64,
            "{ctx}: promotion never attempted ({attempts} hits)"
        );
        let stats = vm.op_stats();
        assert_eq!(
            stats.superpage_promotions, 0,
            "{ctx}: promotion succeeded despite armed failpoint"
        );
        assert_eq!(
            machine.pool().stats().block_allocs,
            0,
            "{ctx}: aborted promotion took a block"
        );

        // Relief: the next convergence promotes for real.
        failpoint::disarm_all();
        vm.mprotect(0, BASE, len, Prot::READ)
            .unwrap_or_else(|e| panic!("{ctx}: second mprotect READ: {e}"));
        vm.mprotect(0, BASE, len, Prot::RW)
            .unwrap_or_else(|e| panic!("{ctx}: second mprotect RW: {e}"));
        for p in 0..BLOCK_PAGES {
            assert_eq!(
                machine.read_u64(0, &*vm, BASE + p * PAGE_SIZE),
                Ok(0x1000 + p),
                "{ctx}: page {p} lost across promotion"
            );
        }
        let stats = vm.op_stats();
        assert_eq!(
            stats.superpage_promotions, 1,
            "{ctx}: promotion did not recover after disarm"
        );
        assert_eq!(
            machine.pool().stats().block_allocs,
            1,
            "{ctx}: migration promotion must take exactly one block"
        );
        vm.munmap(0, BASE, len)
            .unwrap_or_else(|e| panic!("{ctx}: munmap: {e}"));
        vm.quiesce();
    }
    assert_clean(&machine, ctx);
}

/// Same seed ⇒ same injection schedule, observed end-to-end through
/// the VM: a random-trigger fault loop replays identically.
#[test]
fn random_injection_schedule_is_deterministic_through_the_vm() {
    failpoint::disarm_all();
    let run = |seed: u64| -> Vec<bool> {
        let machine = Machine::new(1);
        let vm: Arc<dyn VmSystem> = build(&machine, BackendKind::Radix);
        vm.attach_core(0);
        vm.mmap(0, BASE, 64 * PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
        failpoint::arm(
            failpoint::FRAME_ALLOC,
            0,
            Trigger::Random {
                seed,
                num: 1,
                den: 3,
            },
        );
        let outcomes = (0..64)
            .map(|p| machine.write_u64(0, &*vm, BASE + p * PAGE_SIZE, p).is_ok())
            .collect();
        failpoint::disarm_all();
        outcomes
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must replay the same OOM schedule");
    let c = run(8);
    assert_ne!(a, c, "different seeds must diverge");
}
