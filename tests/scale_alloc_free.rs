//! Multicore acceptance gate for the fault fast path: the *warm
//! disjoint* fault loop is allocation-free on every core, and the range
//! guard's inline storage never spills regardless of core count.
//!
//! The single-core gate lives in `tests/alloc_free.rs`; this binary
//! scales the same property: N cores each own a private 8-page block and
//! take interleaved fill faults (invalidate own TLB entry, re-read).
//! Per-core leaf hints, inline guards, sharded statistics counters, and
//! read-before-write attach tracking must keep that loop free of heap
//! allocations — an allocation on any core taints the shared counter and
//! fails the gate.
//!
//! Lives in its own integration-test binary because it installs a
//! counting global allocator, and contains a single #[test] so no
//! concurrent test can perturb the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radixvm::backend::{build, BackendKind};
use radixvm::core_vm::RadixVm;
use radixvm::hw::{Backing, Machine, Prot, PAGE_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to the system allocator; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const BASE: u64 = 0x60_0000_0000;
const PAGES: u64 = 8;

/// Runs `work` in up to five measurement windows and requires at least
/// one window with zero allocations (the counter is process-global and
/// the libtest harness may allocate concurrently in the first window; a
/// genuine fault-path allocation would taint *every* window).
fn assert_allocation_free(label: &str, mut work: impl FnMut()) {
    let mut last = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        work();
        last = ALLOCS.load(Ordering::Relaxed) - before;
        if last == 0 {
            return;
        }
    }
    panic!("{label}: every window allocated (last saw {last} allocations)");
}

/// One interleaved warm-fault round: every core invalidates its own TLB
/// entry for one page of its private block and re-reads it (fill fault:
/// range lock via leaf hint, PTE reinstall, TLB fill).
fn fault_round(machine: &Machine, vm: &dyn radixvm::hw::VmSystem, ncores: usize, i: u64) {
    for core in 0..ncores {
        let base = BASE + core as u64 * (1 << 30);
        let vpn = (base >> 12) + (i % PAGES);
        machine.invalidate_local(core, vm.asid(), vpn, 1);
        machine
            .read_u64(core, vm, base + (i % PAGES) * PAGE_SIZE)
            .unwrap();
    }
}

#[test]
fn warm_disjoint_fault_loops_are_allocation_free_per_core() {
    for &ncores in &[1usize, 4, 8] {
        let machine = Machine::new(ncores);
        let vm = build(&machine, BackendKind::Radix);
        let radix = vm
            .as_any()
            .downcast_ref::<RadixVm>()
            .expect("Radix backend is a RadixVm");
        for core in 0..ncores {
            vm.attach_core(core);
            let base = BASE + core as u64 * (1 << 30);
            vm.mmap(core, base, PAGES * PAGE_SIZE, Prot::RW, Backing::Anon)
                .unwrap();
            for p in 0..PAGES {
                machine
                    .touch_page(core, &*vm, base + p * PAGE_SIZE, 1)
                    .unwrap();
            }
        }
        // Warm up (page tables, TLB structures, leaf hints), drain
        // warm-up residue from the Refcache delta caches, re-warm.
        for i in 0..64u64 {
            fault_round(&machine, &*vm, ncores, i);
        }
        vm.quiesce();
        for i in 0..64u64 {
            fault_round(&machine, &*vm, ncores, i);
        }
        let spills0 = radix.tree_stats().guard_spills();
        assert_allocation_free(&format!("{ncores}-core warm disjoint fault loop"), || {
            for i in 0..2_000u64 {
                fault_round(&machine, &*vm, ncores, i);
            }
        });
        // Inline guard storage must hold at every core count: spills
        // growing with cores would mean the fast path regressed into the
        // allocator exactly when scaling matters most.
        assert_eq!(
            radix.tree_stats().guard_spills() - spills0,
            0,
            "{ncores}-core warm faults spilled guard storage"
        );
        // And nothing across the whole setup (8-page mmaps, fill faults)
        // should have spilled either: single-block guards stay inline.
        assert_eq!(
            radix.tree_stats().guard_spills(),
            0,
            "{ncores}-core run spilled guard storage outside the loop"
        );

        // COLD multicore gate: every core demand-zero populates its own
        // fresh pages — frame off the core-local free list, count cell
        // armed in the frame table (DESIGN.md §8) — with zero heap
        // allocations on any core. Leaves/page tables/free lists are
        // pre-built per core; between windows each core's mapping is
        // replaced in place (displacing frames, keeping leaves) and the
        // VM quiesced so the measured faults are genuinely cold.
        const COLD_BASE: u64 = 0x68_0000_0000;
        const COLD_PAGES: u64 = 512;
        let core_base = |core: usize| COLD_BASE + core as u64 * (1 << 30);
        for core in 0..ncores {
            vm.mmap(
                core,
                core_base(core),
                COLD_PAGES * PAGE_SIZE,
                Prot::RW,
                Backing::Anon,
            )
            .unwrap();
            for p in 0..COLD_PAGES {
                machine
                    .touch_page(core, &*vm, core_base(core) + p * PAGE_SIZE, 1)
                    .unwrap();
            }
        }
        let mut clean = false;
        let mut last = u64::MAX;
        for _ in 0..5 {
            for core in 0..ncores {
                vm.mmap(
                    core,
                    core_base(core),
                    COLD_PAGES * PAGE_SIZE,
                    Prot::RW,
                    Backing::Anon,
                )
                .unwrap();
            }
            vm.quiesce();
            let fa0 = vm.op_stats().faults_alloc;
            let before = ALLOCS.load(Ordering::Relaxed);
            for p in 0..COLD_PAGES {
                for core in 0..ncores {
                    machine
                        .read_u64(core, &*vm, core_base(core) + p * PAGE_SIZE)
                        .unwrap();
                }
            }
            last = ALLOCS.load(Ordering::Relaxed) - before;
            assert_eq!(
                vm.op_stats().faults_alloc - fa0,
                COLD_PAGES * ncores as u64,
                "{ncores}-core window faults must be cold allocating faults"
            );
            if last == 0 {
                clean = true;
                break;
            }
        }
        assert!(
            clean,
            "{ncores}-core cold fault loop: every window allocated \
             (last saw {last} allocations)"
        );
    }
}
