//! Property-based tests: each core data structure against a pure oracle.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use radixvm::backend::{build, BackendKind};
use radixvm::baselines::{SkipList, Vma, VmaMap};
use radixvm::hw::{Backing, Machine, MapFlags, Prot, VmError, BLOCK_PAGES, GIANT_PAGES, PAGE_SIZE};
use radixvm::radix::{LockMode, RadixConfig, RadixTree, Removed};
use radixvm::refcache::{Managed, Refcache, ReleaseCtx};
use radixvm::sync::failpoint::{self, Trigger};
use radixvm::sync::{RangeLock, RangeLockKind, RangeToken};

/// Operations over a small VPN window.
#[derive(Debug, Clone)]
enum TreeOp {
    Set { lo: u64, len: u64, val: u64 },
    Clear { lo: u64, len: u64 },
    Get { at: u64 },
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u64..2048, 1u64..600, any::<u64>()).prop_map(|(lo, len, val)| TreeOp::Set {
            lo,
            len,
            val
        }),
        (0u64..2048, 1u64..600).prop_map(|(lo, len)| TreeOp::Clear { lo, len }),
        (0u64..2700).prop_map(|at| TreeOp::Get { at }),
    ]
}

/// VM-level operations over a small window, mixing granularities: maps
/// may be superpage-aligned (and hinted) or arbitrary 4 KiB ranges, and
/// unmaps freely cut across populated superpages (forcing demotion).
#[derive(Debug, Clone)]
enum VmOp {
    /// mmap `pages` pages at `start`; `aligned` snaps both to block
    /// boundaries, `huge` adds the superpage hint.
    Map {
        start: u64,
        pages: u64,
        aligned: bool,
        huge: bool,
    },
    /// munmap `pages` pages at `start` (aligned variant as above).
    Unmap {
        start: u64,
        pages: u64,
        aligned: bool,
    },
    /// Write `val` to page `page` through the access path.
    Write { page: u64, val: u64 },
    /// Read page `page` through the access path.
    Read { page: u64 },
}

/// The mixed-granularity window: 4 superpage blocks.
const VM_WINDOW: u64 = 4 * BLOCK_PAGES;

fn vm_op() -> impl Strategy<Value = VmOp> {
    prop_oneof![
        (0..VM_WINDOW, 1..1100u64, any::<bool>(), any::<bool>()).prop_map(
            |(start, pages, aligned, huge)| VmOp::Map {
                start,
                pages,
                aligned,
                huge
            }
        ),
        (0..VM_WINDOW, 1..1100u64, any::<bool>()).prop_map(|(start, pages, aligned)| {
            VmOp::Unmap {
                start,
                pages,
                aligned,
            }
        }),
        (0..VM_WINDOW, any::<u64>()).prop_map(|(page, val)| VmOp::Write { page, val }),
        (0..VM_WINDOW).prop_map(|page| VmOp::Read { page }),
    ]
}

/// Demote/promote cycle operations over a 2-block window: protection
/// round-trips and hole-punches demote populated superpages, full-block
/// sweeps converge them so the fault path's fill counters promote them
/// back, and a pressure toggle (the block-allocation failpoint) forces
/// hinted populates into scattered 4 KiB pages — whose sweeps then
/// promote by *migration* once pressure lifts.
#[derive(Debug, Clone)]
enum CycleOp {
    /// Map one aligned block, hinted.
    MapHuge {
        block: u64,
    },
    /// Unmap one whole block.
    UnmapBlock {
        block: u64,
    },
    /// Unmap a single page (demotes a populated superpage).
    PunchHole {
        block: u64,
        page: u64,
    },
    /// mprotect READ then RW on a sub-range (demotes; restores RW).
    ProtCycle {
        block: u64,
        pages: u64,
    },
    /// Touch every page of the block with `val + page` (converges; the
    /// crossing promotes when all 512 pages are present and uniform).
    Sweep {
        block: u64,
        val: u64,
    },
    /// Arm or disarm the block-allocation failpoint (§11 pressure).
    Pressure {
        on: bool,
    },
    Write {
        page: u64,
        val: u64,
    },
    Read {
        page: u64,
    },
}

/// The demote/promote window: 2 superpage blocks.
const CYCLE_BLOCKS: u64 = 2;

fn cycle_op() -> impl Strategy<Value = CycleOp> {
    prop_oneof![
        (0..CYCLE_BLOCKS).prop_map(|block| CycleOp::MapHuge { block }),
        (0..CYCLE_BLOCKS).prop_map(|block| CycleOp::UnmapBlock { block }),
        (0..CYCLE_BLOCKS, 0..BLOCK_PAGES)
            .prop_map(|(block, page)| CycleOp::PunchHole { block, page }),
        (0..CYCLE_BLOCKS, 1..32u64).prop_map(|(block, pages)| CycleOp::ProtCycle { block, pages }),
        (0..CYCLE_BLOCKS, any::<u64>()).prop_map(|(block, val)| CycleOp::Sweep { block, val }),
        any::<bool>().prop_map(|on| CycleOp::Pressure { on }),
        (0..CYCLE_BLOCKS * BLOCK_PAGES, any::<u64>())
            .prop_map(|(page, val)| CycleOp::Write { page, val }),
        (0..CYCLE_BLOCKS * BLOCK_PAGES).prop_map(|page| CycleOp::Read { page }),
    ]
}

/// Blocks per giant region.
const GIANT_BLOCKS: u64 = GIANT_PAGES / BLOCK_PAGES;

/// Block-granular operations over two 1 GiB regions, exercising the
/// giant rung purely at the tree level (no frames: a *populated* giant
/// region would cost a real gigabyte of host memory per case).
#[derive(Debug, Clone)]
enum GiantOp {
    /// Set `blks` blocks starting at block `start_blk` to `val`.
    Set { start_blk: u64, blks: u64, val: u64 },
    /// Clear `blks` blocks starting at block `start_blk`.
    Clear { start_blk: u64, blks: u64 },
    /// Sample block `blk` at both edges.
    Probe { blk: u64 },
}

fn giant_op() -> impl Strategy<Value = GiantOp> {
    // Lengths biased so whole-giant ranges (one fold) actually occur.
    fn len() -> impl Strategy<Value = u64> {
        prop_oneof![1..64u64, Just(GIANT_BLOCKS), Just(2 * GIANT_BLOCKS)]
    }
    prop_oneof![
        (0..2 * GIANT_BLOCKS, len(), any::<u64>()).prop_map(|(start_blk, blks, val)| {
            GiantOp::Set {
                start_blk,
                blks,
                val,
            }
        }),
        (0..2 * GIANT_BLOCKS, len())
            .prop_map(|(start_blk, blks)| GiantOp::Clear { start_blk, blks }),
        (0..2 * GIANT_BLOCKS).prop_map(|blk| GiantOp::Probe { blk }),
    ]
}

/// Snaps an op's `(start, pages)` to the window, optionally to block
/// alignment. Returns `None` when nothing is left.
fn clamp(start: u64, pages: u64, aligned: bool) -> Option<(u64, u64)> {
    let (start, pages) = if aligned {
        let s = start & !(BLOCK_PAGES - 1);
        (s, pages.div_ceil(BLOCK_PAGES) * BLOCK_PAGES)
    } else {
        (start, pages)
    };
    let start = start.min(VM_WINDOW);
    let pages = pages.min(VM_WINDOW - start);
    (pages > 0).then_some((start, pages))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full RadixVM address space agrees with a flat per-page oracle
    /// under mixed-granularity op sequences: hinted aligned mappings
    /// (superpage installs), arbitrary 4 KiB mappings over them,
    /// demotion-forcing partial unmaps, and reads/writes through the
    /// machine access path.
    #[test]
    fn radix_vm_mixed_granularity_matches_flat_oracle(
        ops in proptest::collection::vec(vm_op(), 1..60)
    ) {
        let machine = Machine::new(1);
        let vm = build(&machine, BackendKind::Radix);
        vm.attach_core(0);
        let base_va: u64 = 0x80_0000_0000; // superpage aligned
        let va = |p: u64| base_va + p * PAGE_SIZE;
        // page -> current value of mapped pages.
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                VmOp::Map { start, pages, aligned, huge } => {
                    let Some((start, pages)) = clamp(start, pages, aligned) else {
                        continue;
                    };
                    let flags = if huge { MapFlags::HUGE } else { MapFlags::NONE };
                    vm.mmap_flags(0, va(start), pages * PAGE_SIZE, Prot::RW,
                                  Backing::Anon, flags).unwrap();
                    for p in start..start + pages {
                        oracle.insert(p, 0); // demand zero
                    }
                }
                VmOp::Unmap { start, pages, aligned } => {
                    let Some((start, pages)) = clamp(start, pages, aligned) else {
                        continue;
                    };
                    vm.munmap(0, va(start), pages * PAGE_SIZE).unwrap();
                    for p in start..start + pages {
                        oracle.remove(&p);
                    }
                }
                VmOp::Write { page, val } => {
                    let r = machine.write_u64(0, &*vm, va(page), val);
                    match oracle.get_mut(&page) {
                        Some(slot) => {
                            prop_assert_eq!(r, Ok(()), "write to mapped page {}", page);
                            *slot = val;
                        }
                        None => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
                VmOp::Read { page } => {
                    let r = machine.read_u64(0, &*vm, va(page));
                    match oracle.get(&page) {
                        Some(v) => prop_assert_eq!(r, Ok(*v), "read of page {}", page),
                        None => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
            }
        }
        // Final sweep: every page of the window agrees with the oracle.
        for p in 0..VM_WINDOW {
            let r = machine.read_u64(0, &*vm, va(p));
            match oracle.get(&p) {
                Some(v) => prop_assert_eq!(r, Ok(*v), "final sweep page {}", p),
                None => prop_assert_eq!(r, Err(VmError::NoMapping), "page {}", p),
            }
        }
        prop_assert_eq!(machine.stats().stale_detected, 0);
        // Tear down and verify nothing double-frees: every block alloc
        // has at most one block free.
        vm.munmap(0, base_va, VM_WINDOW * PAGE_SIZE).unwrap();
        vm.quiesce();
        let st = machine.pool().stats();
        prop_assert!(st.block_frees <= st.block_allocs);
    }

    /// The oracle under *memory pressure*: the same mixed-granularity op
    /// stream with seeded random OOM injection at the frame and block
    /// allocation sites. Contracts checked at every step:
    ///
    /// - an unmapped access still fails `NoMapping` (injection never
    ///   masks the real error);
    /// - a mapped access either succeeds or fails `OutOfMemory`, and a
    ///   page known to be populated never OOMs (populated accesses do
    ///   not allocate);
    /// - a failed fault installs nothing: once the failpoints are
    ///   disarmed, every page reads back exactly the oracle's value
    ///   (failed writes left no trace), and teardown accounts for every
    ///   frame.
    #[test]
    fn radix_vm_matches_oracle_under_injected_oom(
        (ops, seed) in (proptest::collection::vec(vm_op(), 1..60), any::<u64>())
    ) {
        failpoint::disarm_all();
        let machine = Machine::new(1);
        let vm = build(&machine, BackendKind::Radix);
        vm.attach_core(0);
        let base_va: u64 = 0x80_0000_0000;
        let va = |p: u64| base_va + p * PAGE_SIZE;
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        // Pages we have *observed* populated (successful read or write).
        // A subset of the truly populated pages (a block populate fills
        // 512 at once), which is the sound direction: we only assert
        // "must not OOM" for pages in this set.
        let mut populated: BTreeSet<u64> = BTreeSet::new();
        failpoint::arm(failpoint::FRAME_ALLOC, 0, Trigger::Random { seed, num: 1, den: 3 });
        failpoint::arm(failpoint::BLOCK_ALLOC, 0, Trigger::Random { seed, num: 1, den: 2 });
        let mut oom_seen = 0u64;
        for op in &ops {
            match *op {
                VmOp::Map { start, pages, aligned, huge } => {
                    let Some((start, pages)) = clamp(start, pages, aligned) else {
                        continue;
                    };
                    let flags = if huge { MapFlags::HUGE } else { MapFlags::NONE };
                    vm.mmap_flags(0, va(start), pages * PAGE_SIZE, Prot::RW,
                                  Backing::Anon, flags).unwrap();
                    for p in start..start + pages {
                        oracle.insert(p, 0);
                        populated.remove(&p); // replaced: fresh demand-zero
                    }
                }
                VmOp::Unmap { start, pages, aligned } => {
                    let Some((start, pages)) = clamp(start, pages, aligned) else {
                        continue;
                    };
                    vm.munmap(0, va(start), pages * PAGE_SIZE).unwrap();
                    for p in start..start + pages {
                        oracle.remove(&p);
                        populated.remove(&p);
                    }
                }
                VmOp::Write { page, val } => {
                    let r = machine.write_u64(0, &*vm, va(page), val);
                    match (oracle.get_mut(&page), r) {
                        (Some(slot), Ok(())) => {
                            *slot = val;
                            populated.insert(page);
                        }
                        (Some(_), Err(VmError::OutOfMemory)) => {
                            prop_assert!(
                                !populated.contains(&page),
                                "populated page {} OOMed on write", page
                            );
                            oom_seen += 1;
                        }
                        (Some(_), Err(e)) => {
                            prop_assert!(false, "mapped write page {}: {}", page, e);
                        }
                        (None, r) => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
                VmOp::Read { page } => {
                    let r = machine.read_u64(0, &*vm, va(page));
                    match (oracle.get(&page), r) {
                        (Some(v), Ok(got)) => {
                            prop_assert_eq!(got, *v, "read of page {}", page);
                            populated.insert(page);
                        }
                        (Some(_), Err(VmError::OutOfMemory)) => {
                            prop_assert!(
                                !populated.contains(&page),
                                "populated page {} OOMed on read", page
                            );
                            oom_seen += 1;
                        }
                        (Some(_), Err(e)) => {
                            prop_assert!(false, "mapped read page {}: {}", page, e);
                        }
                        (None, r) => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
            }
        }
        // Injection accounting is visible in the op stats.
        prop_assert_eq!(vm.op_stats().oom_faults, oom_seen);
        // Relief: with the failpoints gone the full window agrees with
        // the oracle — failed faults left neither values nor mappings.
        failpoint::disarm_all();
        for p in 0..VM_WINDOW {
            let r = machine.read_u64(0, &*vm, va(p));
            match oracle.get(&p) {
                Some(v) => prop_assert_eq!(r, Ok(*v), "post-relief page {}", p),
                None => prop_assert_eq!(r, Err(VmError::NoMapping), "page {}", p),
            }
        }
        vm.munmap(0, base_va, VM_WINDOW * PAGE_SIZE).unwrap();
        vm.quiesce();
        machine.pool().flush_magazines();
        prop_assert_eq!(
            machine.pool().outstanding_frames(), 0,
            "frames leaked across injected failures"
        );
    }

    /// Random demote/promote cycles agree with a flat per-page oracle
    /// (DESIGN.md §12). Hole-punches and protection round-trips demote
    /// hinted blocks; full sweeps converge them, letting the fault
    /// path's fill counters promote; the pressure toggle arms the
    /// block-allocation failpoint so hinted populates scatter into
    /// 4 KiB frames (and migration-promotion is vetoed) until relief.
    /// None of it may change what a page reads back as, and teardown
    /// must account for every frame across any number of granularity
    /// transitions.
    #[test]
    fn radix_vm_demote_promote_cycles_match_flat_oracle(
        ops in proptest::collection::vec(cycle_op(), 1..40)
    ) {
        failpoint::disarm_all();
        let machine = Machine::new(1);
        let vm = build(&machine, BackendKind::Radix);
        vm.attach_core(0);
        let base_va: u64 = 0x80_0000_0000; // superpage aligned
        let va = |p: u64| base_va + p * PAGE_SIZE;
        let window = CYCLE_BLOCKS * BLOCK_PAGES;
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                CycleOp::MapHuge { block } => {
                    let start = block * BLOCK_PAGES;
                    vm.mmap_flags(0, va(start), BLOCK_PAGES * PAGE_SIZE, Prot::RW,
                                  Backing::Anon, MapFlags::HUGE).unwrap();
                    for p in start..start + BLOCK_PAGES {
                        oracle.insert(p, 0);
                    }
                }
                CycleOp::UnmapBlock { block } => {
                    let start = block * BLOCK_PAGES;
                    vm.munmap(0, va(start), BLOCK_PAGES * PAGE_SIZE).unwrap();
                    for p in start..start + BLOCK_PAGES {
                        oracle.remove(&p);
                    }
                }
                CycleOp::PunchHole { block, page } => {
                    let p = block * BLOCK_PAGES + page;
                    vm.munmap(0, va(p), PAGE_SIZE).unwrap();
                    oracle.remove(&p);
                }
                CycleOp::ProtCycle { block, pages } => {
                    // Only over fully mapped prefixes: mprotect over a
                    // hole is a different contract than this test's.
                    let start = block * BLOCK_PAGES;
                    if !(start..start + pages).all(|p| oracle.contains_key(&p)) {
                        continue;
                    }
                    vm.mprotect(0, va(start), pages * PAGE_SIZE, Prot::READ).unwrap();
                    vm.mprotect(0, va(start), pages * PAGE_SIZE, Prot::RW).unwrap();
                }
                CycleOp::Sweep { block, val } => {
                    let start = block * BLOCK_PAGES;
                    for p in start..start + BLOCK_PAGES {
                        let r = machine.write_u64(0, &*vm, va(p), val.wrapping_add(p));
                        match oracle.get_mut(&p) {
                            Some(slot) => {
                                prop_assert_eq!(r, Ok(()), "sweep write page {}", p);
                                *slot = val.wrapping_add(p);
                            }
                            None => prop_assert_eq!(r, Err(VmError::NoMapping)),
                        }
                    }
                }
                CycleOp::Pressure { on } => {
                    if on {
                        failpoint::arm(failpoint::BLOCK_ALLOC, 0, Trigger::EveryK(1));
                    } else {
                        failpoint::disarm_all();
                    }
                }
                CycleOp::Write { page, val } => {
                    let r = machine.write_u64(0, &*vm, va(page), val);
                    match oracle.get_mut(&page) {
                        Some(slot) => {
                            prop_assert_eq!(r, Ok(()), "write to mapped page {}", page);
                            *slot = val;
                        }
                        None => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
                CycleOp::Read { page } => {
                    let r = machine.read_u64(0, &*vm, va(page));
                    match oracle.get(&page) {
                        Some(v) => prop_assert_eq!(r, Ok(*v), "read of page {}", page),
                        None => prop_assert_eq!(r, Err(VmError::NoMapping)),
                    }
                }
            }
        }
        failpoint::disarm_all();
        // Whatever granularity each page ended at, it reads the oracle.
        for p in 0..window {
            let r = machine.read_u64(0, &*vm, va(p));
            match oracle.get(&p) {
                Some(v) => prop_assert_eq!(r, Ok(*v), "final sweep page {}", p),
                None => prop_assert_eq!(r, Err(VmError::NoMapping), "page {}", p),
            }
        }
        prop_assert_eq!(machine.stats().stale_detected, 0);
        vm.munmap(0, base_va, window * PAGE_SIZE).unwrap();
        vm.quiesce();
        machine.pool().flush_magazines();
        prop_assert_eq!(
            machine.pool().outstanding_frames(), 0,
            "frames leaked across demote/promote cycles"
        );
    }

    /// The 1 GiB rung behaves exactly like the 2 MiB rung one level up:
    /// a block-granular oracle over two giant regions agrees with the
    /// tree across giant folds, their expansion into 512 block folds,
    /// and collapse back. Pure tree-level (u64 values, no frames), so a
    /// "populated giant" costs nothing; probes sample boundaries instead
    /// of walking 262144 slots.
    #[test]
    fn radix_tree_giant_rung_matches_block_oracle(
        ops in proptest::collection::vec(giant_op(), 1..40)
    ) {
        let cache = Arc::new(Refcache::new(1));
        let tree = RadixTree::<u64>::new(cache.clone(), RadixConfig::default());
        // block index -> value; every op is block-granular, so a
        // per-block oracle is exact.
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let base = GIANT_PAGES * 3; // giant aligned
        let nblocks = GIANT_BLOCKS * 2;
        // Checks one removal set against the oracle and returns the
        // number of blocks it covered.
        let check_removed = |oracle: &BTreeMap<u64, u64>, removed: &[Removed<u64>]| -> u64 {
            let mut blocks = 0u64;
            for d in removed {
                match d {
                    Removed::Page(vpn, v) => {
                        // Block-granular ops never displace loose pages.
                        prop_assert!(false, "page-grain removal at {} ({})", vpn, v);
                    }
                    Removed::Block { start, pages, value } => {
                        prop_assert_eq!(*pages % BLOCK_PAGES, 0,
                                        "removal not block-granular");
                        for b in (*start - base) / BLOCK_PAGES
                            ..(*start - base + *pages) / BLOCK_PAGES {
                            prop_assert_eq!(oracle.get(&b), Some(value), "block {}", b);
                        }
                        blocks += pages / BLOCK_PAGES;
                    }
                }
            }
            blocks
        };
        for op in &ops {
            match *op {
                GiantOp::Set { start_blk, blks, val } => {
                    let blks = blks.min(nblocks - start_blk);
                    let (lo, hi) = (base + start_blk * BLOCK_PAGES,
                                    base + (start_blk + blks) * BLOCK_PAGES);
                    // ExpandAll: fully covered empty slots stay whole, so
                    // an exact giant range installs one giant fold.
                    let displaced =
                        tree.lock_range(0, lo, hi, LockMode::ExpandAll).replace(&val);
                    let got = check_removed(&oracle, &displaced);
                    let expected = (start_blk..start_blk + blks)
                        .filter(|b| oracle.contains_key(b)).count() as u64;
                    prop_assert_eq!(got, expected);
                    for b in start_blk..start_blk + blks {
                        oracle.insert(b, val);
                    }
                }
                GiantOp::Clear { start_blk, blks } => {
                    let blks = blks.min(nblocks - start_blk);
                    let (lo, hi) = (base + start_blk * BLOCK_PAGES,
                                    base + (start_blk + blks) * BLOCK_PAGES);
                    let removed =
                        tree.lock_range(0, lo, hi, LockMode::ExpandFolded).clear();
                    let got = check_removed(&oracle, &removed);
                    let expected = (start_blk..start_blk + blks)
                        .filter(|b| oracle.contains_key(b)).count() as u64;
                    prop_assert_eq!(got, expected);
                    for b in start_blk..start_blk + blks {
                        oracle.remove(&b);
                    }
                }
                GiantOp::Probe { blk } => {
                    let blk = blk.min(nblocks - 1);
                    let want = oracle.get(&blk).copied();
                    // First and last page of the block: a giant fold, a
                    // block fold, and absence all answer the same.
                    let lo = base + blk * BLOCK_PAGES;
                    prop_assert_eq!(tree.get(0, lo), want, "block {} head", blk);
                    prop_assert_eq!(tree.get(0, lo + BLOCK_PAGES - 1), want,
                                    "block {} tail", blk);
                }
            }
        }
        // Collapse everything, then sample every block at both edges.
        cache.quiesce();
        for b in 0..nblocks {
            let want = oracle.get(&b).copied();
            let lo = base + b * BLOCK_PAGES;
            prop_assert_eq!(tree.get(0, lo), want, "final block {} head", b);
            prop_assert_eq!(tree.get(0, lo + BLOCK_PAGES - 1), want,
                            "final block {} tail", b);
        }
    }

    /// The radix tree behaves exactly like a BTreeMap of per-page values,
    /// including across folding, expansion, and collapse.
    #[test]
    fn radix_tree_matches_btreemap(ops in proptest::collection::vec(tree_op(), 1..60)) {
        let cache = Arc::new(Refcache::new(1));
        let tree = RadixTree::<u64>::new(cache.clone(), RadixConfig::default());
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        // Offset the window so it straddles a 512-alignment boundary.
        let base = 512 * 7 + 13;
        for op in &ops {
            match *op {
                TreeOp::Set { lo, len, val } => {
                    let (lo, hi) = (base + lo, base + lo + len);
                    let mut g = tree.lock_range(0, lo, hi, LockMode::ExpandAll);
                    let displaced = g.replace(&val);
                    // Displaced values must match the oracle's prior state.
                    let mut displaced_pages = 0;
                    for d in &displaced {
                        match d {
                            Removed::Page(vpn, v) => {
                                prop_assert_eq!(oracle.get(vpn), Some(v));
                                displaced_pages += 1;
                            }
                            Removed::Block { start, pages, value } => {
                                for p in *start..*start + *pages {
                                    prop_assert_eq!(oracle.get(&p), Some(value));
                                }
                                displaced_pages += pages;
                            }
                        }
                    }
                    let expected: u64 =
                        (lo..hi).filter(|p| oracle.contains_key(p)).count() as u64;
                    prop_assert_eq!(displaced_pages, expected);
                    for p in lo..hi {
                        oracle.insert(p, val);
                    }
                }
                TreeOp::Clear { lo, len } => {
                    let (lo, hi) = (base + lo, base + lo + len);
                    let mut g = tree.lock_range(0, lo, hi, LockMode::ExpandFolded);
                    let removed = g.clear();
                    let mut removed_pages = 0;
                    for d in &removed {
                        match d {
                            Removed::Page(vpn, v) => {
                                prop_assert_eq!(oracle.get(vpn), Some(v));
                                removed_pages += 1;
                            }
                            Removed::Block { start, pages, value } => {
                                for p in *start..*start + *pages {
                                    prop_assert_eq!(oracle.get(&p), Some(value));
                                }
                                removed_pages += pages;
                            }
                        }
                    }
                    let expected: u64 =
                        (lo..hi).filter(|p| oracle.contains_key(p)).count() as u64;
                    prop_assert_eq!(removed_pages, expected);
                    for p in lo..hi {
                        oracle.remove(&p);
                    }
                }
                TreeOp::Get { at } => {
                    let at = base + at;
                    prop_assert_eq!(tree.get(0, at), oracle.get(&at).copied());
                    prop_assert_eq!(tree.lookup_present(0, at), oracle.contains_key(&at));
                }
            }
        }
        // Collapse everything and verify the tree still agrees.
        cache.quiesce();
        for (&p, &v) in &oracle {
            prop_assert_eq!(tree.get(0, p), Some(v));
        }
    }

    /// The same oracle with the leaf hint cache force-enabled and
    /// adversarial maintenance interleaved: every read runs twice (the
    /// first may miss and install the hint, the second must hit), and
    /// periodic maintenance surrenders hint pins so collapse/revival
    /// interleave with hinted reads. `collect_range`'s single range walk
    /// is also held to the oracle here.
    #[test]
    fn radix_tree_matches_btreemap_with_hints(
        ops in proptest::collection::vec(tree_op(), 1..60)
    ) {
        let cache = Arc::new(Refcache::new(1));
        let tree = RadixTree::<u64>::new(
            cache.clone(),
            RadixConfig { collapse: true, leaf_hints: true, ..RadixConfig::default() },
        );
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let base = 512 * 7 + 13;
        for (n, op) in ops.iter().enumerate() {
            match *op {
                TreeOp::Set { lo, len, val } => {
                    let (lo, hi) = (base + lo, base + lo + len);
                    tree.lock_range(0, lo, hi, LockMode::ExpandAll).replace(&val);
                    for p in lo..hi {
                        oracle.insert(p, val);
                    }
                }
                TreeOp::Clear { lo, len } => {
                    let (lo, hi) = (base + lo, base + lo + len);
                    tree.lock_range(0, lo, hi, LockMode::ExpandFolded).clear();
                    for p in lo..hi {
                        oracle.remove(&p);
                    }
                }
                TreeOp::Get { at } => {
                    let at = base + at;
                    // Twice: a miss (installing the hint) must agree with
                    // the hit that follows it.
                    prop_assert_eq!(tree.get(0, at), oracle.get(&at).copied());
                    prop_assert_eq!(tree.get(0, at), oracle.get(&at).copied());
                    prop_assert_eq!(tree.lookup_present(0, at), oracle.contains_key(&at));
                }
            }
            if n % 7 == 0 {
                // Surrender hint pins and advance epochs mid-run.
                cache.maintain(0);
            }
        }
        // The single range walk agrees with the oracle wholesale.
        let walked = tree.collect_range(0, base, base + 2700);
        let expected: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(walked, expected);
        cache.quiesce();
        for (&p, &v) in &oracle {
            prop_assert_eq!(tree.get(0, p), Some(v));
        }
    }

    /// Refcache frees an object exactly when a matched inc/dec history
    /// ends at zero, never earlier, regardless of which cores the
    /// operations and flushes land on.
    #[test]
    fn refcache_matches_exact_counter(
        ops in proptest::collection::vec((0usize..4, prop_oneof![Just(1i64), Just(-1i64)], 0usize..5), 0..80)
    ) {
        struct Flag(Arc<std::sync::atomic::AtomicU64>);
        impl Managed for Flag {
            fn on_release(&mut self, _: &ReleaseCtx<'_>) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let rc = Refcache::new(4);
        let freed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let obj = rc.alloc(1, Flag(freed.clone()));
        let mut count = 1i64;
        for (core, delta, flushes) in ops {
            // Keep the true count positive: only apply a dec if it will
            // not take the count to zero mid-run.
            if delta < 0 && count <= 1 {
                continue;
            }
            if delta > 0 {
                rc.inc(core, obj);
            } else {
                rc.dec(core, obj);
            }
            count += delta;
            for f in 0..flushes {
                rc.maintain(f % 4);
            }
            prop_assert_eq!(freed.load(std::sync::atomic::Ordering::SeqCst), 0);
        }
        // Drain the remaining references; the object must free exactly once.
        for _ in 0..count {
            rc.dec(0, obj);
        }
        rc.quiesce();
        prop_assert_eq!(freed.load(std::sync::atomic::Ordering::SeqCst), 1);
        prop_assert_eq!(rc.live_objects(), 0);
    }

    /// The VMA map's carve/insert/merge agrees with a per-page oracle.
    #[test]
    fn vma_map_matches_page_oracle(
        ops in proptest::collection::vec((0u64..400, 1u64..80, any::<bool>()), 1..60)
    ) {
        let mut m = VmaMap::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for (lo, len, is_map) in ops {
            let hi = lo + len;
            if is_map {
                m.carve(lo, hi);
                m.insert(Vma { start: lo, end: hi, prot: Prot::RW, backing: Backing::Anon });
                for p in lo..hi {
                    oracle.insert(p);
                }
            } else {
                m.carve(lo, hi);
                for p in lo..hi {
                    oracle.remove(&p);
                }
            }
            // Spot-check membership.
            for probe in [lo, lo + len / 2, hi.saturating_sub(1), hi, lo.saturating_sub(1)] {
                prop_assert_eq!(
                    m.lookup(probe).is_some(),
                    oracle.contains(&probe),
                    "probe {}", probe
                );
            }
        }
        // VMA count is bounded by the number of maximal runs in the oracle.
        let mut runs = 0;
        let mut prev = None;
        for &p in &oracle {
            if prev != Some(p.wrapping_sub(1)) {
                runs += 1;
            }
            prev = Some(p);
        }
        prop_assert_eq!(m.iter().count(), runs, "VMAs must merge into maximal runs");
    }

    /// The list-based range lock agrees with a pure interval oracle
    /// under random overlapping acquire/release sequences: with no
    /// concurrent contender, `try_acquire` must succeed *iff* the range
    /// is disjoint from every held range (mutual exclusion and no
    /// spurious failure), `holders()` must track the held set exactly
    /// (no leaked or lost descriptors), and draining every hold must
    /// leave the list empty (release always unlinks — the no-deadlock /
    /// no-lost-wakeup half lives in the threaded stress tests, which
    /// would hang or assert if a waiter missed a release).
    #[test]
    fn range_lock_matches_interval_oracle(
        ops in proptest::collection::vec(
            (0u64..64, 1u64..9, any::<bool>(), 0usize..8), 1..200
        )
    ) {
        let rl = RangeLock::new();
        let mut held: Vec<(u64, u64, RangeToken)> = Vec::new();
        for (lo, len, acquire, ridx) in ops {
            if acquire {
                let hi = lo + len;
                let free = held.iter().all(|&(l, h, _)| hi <= l || h <= lo);
                match rl.try_acquire(0, lo, hi) {
                    Some(tok) => {
                        prop_assert!(free, "acquired [{},{}) over a held range", lo, hi);
                        held.push((lo, hi, tok));
                    }
                    None => prop_assert!(!free, "refused disjoint [{},{})", lo, hi),
                }
            } else if !held.is_empty() {
                let (_, _, tok) = held.swap_remove(ridx % held.len());
                rl.release(0, tok);
            }
            prop_assert_eq!(rl.holders(), held.len());
        }
        for (_, _, tok) in held.drain(..) {
            rl.release(0, tok);
        }
        prop_assert_eq!(rl.holders(), 0);
    }

    /// Both range-lock substrates produce identical tree contents for
    /// the same op sequence: the list only *fronts* the slot locks, it
    /// never changes what they protect.
    #[test]
    fn radix_tree_agrees_across_range_lock_substrates(
        ops in proptest::collection::vec(tree_op(), 1..40)
    ) {
        let base = 512 * 7 + 13;
        let mut contents: Vec<Vec<(u64, u64)>> = Vec::new();
        for kind in [RangeLockKind::List, RangeLockKind::SlotSpin] {
            let cache = Arc::new(Refcache::new(1));
            let tree = RadixTree::<u64>::new(
                cache.clone(),
                RadixConfig { range_lock: kind, ..RadixConfig::default() },
            );
            for op in &ops {
                match *op {
                    TreeOp::Set { lo, len, val } => {
                        tree.lock_range(0, base + lo, base + lo + len, LockMode::ExpandAll)
                            .replace(&val);
                    }
                    TreeOp::Clear { lo, len } => {
                        tree.lock_range(0, base + lo, base + lo + len, LockMode::ExpandFolded)
                            .clear();
                    }
                    TreeOp::Get { at } => {
                        // Reads are substrate-independent by construction
                        // (they never touch the range lock); still drive
                        // them so hint state diverging would surface.
                        let _ = tree.get(0, base + at);
                    }
                }
            }
            cache.quiesce();
            contents.push(tree.collect_range(0, base, base + 2700));
        }
        prop_assert_eq!(&contents[0], &contents[1], "substrates diverged");
    }

    /// The lock-free skip list agrees with a BTreeSet.
    #[test]
    fn skiplist_matches_btreeset(
        ops in proptest::collection::vec((0u64..300, 0u8..3), 1..300)
    ) {
        let s = SkipList::new();
        let mut oracle = BTreeSet::new();
        for (k, op) in ops {
            match op {
                0 => prop_assert_eq!(s.insert(k), oracle.insert(k)),
                1 => prop_assert_eq!(s.remove(k), oracle.remove(&k)),
                _ => prop_assert_eq!(s.contains(k), oracle.contains(&k)),
            }
        }
    }
}
