#!/usr/bin/env bash
# Regenerates the checked-in perf records so successive PRs have a
# trajectory to compare against:
#
#   BENCH_fastpath.json — single-core fault fast path: virtual-time cost
#     of repeated same-block single-page faults (leaf hints on vs off),
#     hint hit rate, and a wall-clock 1-core fault-fill loop.
#   BENCH_scale.json    — multicore disjoint-ops sweep (Fig. 7): ops/sec
#     and per-core retention for every backend on 1..16 simulated cores,
#     remote cache-line transfers and shootdown IPIs per op; the
#     contended-range sweep (persistent shared mapping, periodic remap,
#     real shootdown IPIs); the overlap-degree sweep (multi-page ops
#     colliding with probability 0/10/50/100% on both the list-based
#     range-lock substrate and the slotspin baseline); plus the
#     scaling/contended/overlap gate verdicts (bench_scale exits
#     non-zero on regression).
#   BENCH_huge.json     — huge-mapping (superpage) populate: faults,
#     superpage installs/demotions/promotions, index and page-table
#     bytes for every backend with and without the huge hint
#     (hint-ignoring backends get one 4 KiB row); the
#     demote-then-converge promotion gate (every block re-folds, probe
#     faults and index bytes within 1.25x of never-demoted); the
#     16-core span-shootdown sweep (span vs per-page IPI pricing by
#     sharer count); plus the gate verdicts (≥ 8x fewer faults,
#     strictly smaller index; bench_huge exits non-zero if any gate
#     regresses).
#   BENCH_refcount.json — frame-table ownership: cold + warm fault
#     loops with zero Refcache-object heap allocations, frame-table
#     cell activation/release balance, and remote-line transfers by
#     category (frame-table vs anonymous heap); bench_refcount exits
#     non-zero on regression.
#   BENCH_numa.json     — NUMA placement sweep: disjoint / contended /
#     index-churn workloads on 1/2/4-node striped topologies under
#     first-touch, interleave, and replicate-read-only placement, with
#     every cache-line transfer priced by hop distance; records per-label
#     per-node-pair cross-socket attribution, on-node vs cross-node frees
#     and fault frames, plus the placement gate verdict (bench_numa exits
#     non-zero on regression).
#   BENCH_pressure.json — memory pressure: the OOM-tolerant local cycle
#     on a frame-capped two-node machine at 0/50/90% pre-fill
#     utilization (throughput, stalls, pressure-tier drains/steals),
#     the fragmentation point (huge-hinted populate degrading to
#     scattered 4 KiB pages under squeezed headroom), plus the pressure
#     gate verdict (bench_pressure exits non-zero on regression).
#
# Run from the repository root; commit the refreshed files.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p rvm_bench --bin bench_fastpath > BENCH_fastpath.json
echo "wrote $(pwd)/BENCH_fastpath.json:" >&2
cat BENCH_fastpath.json

cargo run --release -p rvm_bench --bin bench_scale > BENCH_scale.json
echo "wrote $(pwd)/BENCH_scale.json:" >&2
cat BENCH_scale.json

cargo run --release -p rvm_bench --bin bench_huge > BENCH_huge.json
echo "wrote $(pwd)/BENCH_huge.json:" >&2
cat BENCH_huge.json

cargo run --release -p rvm_bench --bin bench_refcount > BENCH_refcount.json
echo "wrote $(pwd)/BENCH_refcount.json:" >&2
cat BENCH_refcount.json

cargo run --release -p rvm_bench --bin bench_numa > BENCH_numa.json
echo "wrote $(pwd)/BENCH_numa.json:" >&2
cat BENCH_numa.json

cargo run --release -p rvm_bench --bin bench_pressure > BENCH_pressure.json
echo "wrote $(pwd)/BENCH_pressure.json:" >&2
cat BENCH_pressure.json
