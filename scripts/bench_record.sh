#!/usr/bin/env bash
# Regenerates BENCH_fastpath.json, the fault-fast-path perf record:
# virtual-time cost of repeated same-block single-page faults (leaf
# hints on vs off), the hint hit rate, and a wall-clock 1-core
# fault-fill loop. Run from the repository root; commit the refreshed
# file so successive PRs have a perf trajectory to compare against.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p rvm_bench --bin bench_fastpath > BENCH_fastpath.json
echo "wrote $(pwd)/BENCH_fastpath.json:" >&2
cat BENCH_fastpath.json
