//! The paper's application benchmark as a runnable example: a Metis-style
//! MapReduce job building a word position index, with all intermediate
//! memory allocated from a RadixVM address space through the
//! contention-free block allocator.
//!
//! Run with: `cargo run --release --example mapreduce_wordindex [workers] [words]`

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::hw::Machine;
use radixvm::metis::{run_to_completion, Metis, MetisConfig, VmArena};

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let words: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200_000);

    let machine = Machine::new(workers);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..workers {
        vm.attach_core(c);
    }
    // 64 KB allocation unit: the mmap-heavy configuration of Figure 4.
    let arena = Arc::new(VmArena::new(machine.clone(), vm.clone(), 16));
    let job = Metis::new(
        arena,
        MetisConfig {
            workers,
            total_words: words,
            chunk: 512,
            hot_vocab: 1_000,
            cold_vocab: 65_536,
        },
    );

    let t0 = std::time::Instant::now();
    let stats = run_to_completion(&job, workers);
    let dt = t0.elapsed();

    println!(
        "indexed {} words in {dt:.1?} on {workers} workers",
        stats.pairs
    );
    println!(
        "distinct words: {}, output records: {}",
        stats.distinct_words, stats.outputs
    );
    println!("allocator mmap calls: {}", stats.mmaps);
    let ops = vm.op_stats();
    println!(
        "VM: {} mmaps, {} allocating faults, {} fill faults",
        ops.mmaps, ops.faults_alloc, ops.faults_fill
    );
    let hw = machine.stats();
    println!(
        "TLB: {} hits / {} misses, shootdown IPIs: {}",
        hw.tlb_hits, hw.tlb_misses, hw.shootdown_ipis
    );
    assert_eq!(stats.pairs, words / workers as u64 * workers as u64);
}
