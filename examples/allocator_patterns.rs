//! The three address-space sharing patterns of the paper's §5.1 — local,
//! pipeline, and global — run on real threads against one shared RadixVM
//! address space, with the per-pattern shootdown behaviour printed.
//!
//! * local: per-thread memory pools (jemalloc/tcmalloc style),
//! * pipeline: producer→consumer region handoff (streaming),
//! * global: a widely shared region (shared library / hash table).
//!
//! Run with: `cargo run --example allocator_patterns`

use std::sync::Arc;

use radixvm::backend::{build, BackendKind};
use radixvm::hw::{Backing, Machine, Prot, VmSystem, PAGE_SIZE};

const THREADS: usize = 4;
const ITERS: u64 = 2_000;

fn local(machine: &Arc<Machine>, vm: &Arc<dyn VmSystem>) {
    let mut handles = Vec::new();
    for core in 0..THREADS {
        let machine = machine.clone();
        let vm = vm.clone();
        handles.push(std::thread::spawn(move || {
            let base = 0x100_0000_0000 + (core as u64) * (1 << 30);
            for i in 0..ITERS {
                let addr = base + (i % 32) * PAGE_SIZE;
                vm.mmap(core, addr, PAGE_SIZE, Prot::RW, Backing::Anon)
                    .unwrap();
                machine.touch_page(core, &*vm, addr, i as u8).unwrap();
                vm.munmap(core, addr, PAGE_SIZE).unwrap();
                if i % 128 == 0 {
                    vm.maintain(core);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn pipeline(machine: &Arc<Machine>, vm: &Arc<dyn VmSystem>) {
    // Thread k maps + writes, hands the address to thread k+1, which
    // writes again and unmaps. Channels stand in for the app's queues.
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..THREADS {
        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(8);
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let mut handles = Vec::new();
    for core in 0..THREADS {
        let machine = machine.clone();
        let vm = vm.clone();
        let next = txs[(core + 1) % THREADS].clone();
        let rx = rxs[core].take().unwrap();
        handles.push(std::thread::spawn(move || {
            let base = 0x200_0000_0000 + (core as u64) * (1 << 30);
            for i in 0..ITERS {
                let addr = base + (i % 32) * PAGE_SIZE;
                vm.mmap(core, addr, PAGE_SIZE, Prot::RW, Backing::Anon)
                    .unwrap();
                machine.touch_page(core, &*vm, addr, 1).unwrap();
                next.send(addr).unwrap();
                let got = rx.recv().unwrap();
                machine.touch_page(core, &*vm, got, 2).unwrap();
                vm.munmap(core, got, PAGE_SIZE).unwrap();
                if i % 128 == 0 {
                    vm.maintain(core);
                }
            }
        }));
    }
    drop(txs);
    for h in handles {
        h.join().unwrap();
    }
}

fn global(machine: &Arc<Machine>, vm: &Arc<dyn VmSystem>) {
    // Each thread maps a 64 KB slice of a shared region up front; then
    // everyone writes random pages of the whole region.
    const SLICE: u64 = 16;
    let region = 0x300_0000_0000u64;
    for core in 0..THREADS {
        let addr = region + (core as u64) * SLICE * PAGE_SIZE;
        vm.mmap(core, addr, SLICE * PAGE_SIZE, Prot::RW, Backing::Anon)
            .unwrap();
    }
    let total = SLICE * THREADS as u64;
    let mut handles = Vec::new();
    for core in 0..THREADS {
        let machine = machine.clone();
        let vm = vm.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = core as u64 + 1;
            for _ in 0..ITERS {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let addr = region + (rng % total) * PAGE_SIZE;
                machine.touch_page(core, &*vm, addr, core as u8).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for core in 0..THREADS {
        let addr = region + (core as u64) * SLICE * PAGE_SIZE;
        vm.munmap(core, addr, SLICE * PAGE_SIZE).unwrap();
    }
}

fn run(name: &str, f: impl Fn(&Arc<Machine>, &Arc<dyn VmSystem>)) {
    let machine = Machine::new(THREADS);
    let vm = build(&machine, BackendKind::Radix);
    for c in 0..THREADS {
        vm.attach_core(c);
    }
    let t0 = std::time::Instant::now();
    f(&machine, &vm);
    let dt = t0.elapsed();
    let st = machine.stats();
    let ops = vm.op_stats();
    println!(
        "{name:>9}: {dt:>8.1?}  mmap {} / fault {}+{} / IPIs {}",
        ops.mmaps, ops.faults_alloc, ops.faults_fill, st.shootdown_ipis
    );
}

fn main() {
    println!("pattern        time     operations (shootdowns show the design working)");
    run("local", local);
    run("pipeline", pipeline);
    run("global", global);
    println!("local sends zero IPIs; pipeline exactly one per handoff munmap;");
    println!("global broadcasts only when slices are unmapped at the end.");
}
