//! Fork with copy-on-write: the paper motivates Refcache with pages
//! shared between address spaces ("two virtual memory regions may share
//! the same physical pages, such as when forking a process", §3.1). This
//! example forks an address space, shows sharing, triggers copy-on-write
//! from both sides, and verifies the frame accounting.
//!
//! Run with: `cargo run --example fork_cow`

use radixvm::backend::{build, BackendKind};
use radixvm::hw::{Backing, Machine, Prot, PAGE_SIZE};

fn main() {
    let machine = Machine::new(2);
    let parent = build(&machine, BackendKind::Radix);
    parent.attach_core(0);
    parent.attach_core(1);

    // Parent maps and fills 16 pages.
    let addr = 0x5000_0000u64;
    parent
        .mmap(0, addr, 16 * PAGE_SIZE, Prot::RW, Backing::Anon)
        .unwrap();
    for p in 0..16u64 {
        machine
            .write_u64(0, &*parent, addr + p * PAGE_SIZE, 100 + p)
            .unwrap();
    }
    let frames_before = machine.pool().stats().fresh;

    // Fork: child shares every frame copy-on-write. (`fork` is part of
    // the VmSystem trait; backends without it return Unsupported.)
    let child = parent.fork(0).expect("RadixVM supports fork");
    child.attach_core(0);
    child.attach_core(1);
    println!(
        "forked; fresh frames unchanged: {}",
        machine.pool().stats().fresh == frames_before
    );

    // Child reads see the parent's data without copying.
    for p in 0..16u64 {
        let v = machine.read_u64(1, &*child, addr + p * PAGE_SIZE).unwrap();
        assert_eq!(v, 100 + p);
    }
    println!("child reads parent data through shared frames");

    // Child writes one page: copy-on-write isolates it.
    machine.write_u64(1, &*child, addr, 999).unwrap();
    assert_eq!(machine.read_u64(1, &*child, addr).unwrap(), 999);
    assert_eq!(machine.read_u64(0, &*parent, addr).unwrap(), 100);
    println!(
        "child CoW write isolated (child=999, parent=100); cow faults: {}",
        child.op_stats().faults_cow
    );

    // Parent writes another page: also copies.
    machine
        .write_u64(0, &*parent, addr + PAGE_SIZE, 555)
        .unwrap();
    assert_eq!(
        machine.read_u64(1, &*child, addr + PAGE_SIZE).unwrap(),
        101,
        "child keeps the pre-fork value"
    );
    println!(
        "parent CoW write isolated; parent cow faults: {}",
        parent.op_stats().faults_cow
    );

    // Tear down both spaces; every frame must return to the pool.
    drop(child);
    drop(parent);
    let st = machine.pool().stats();
    println!(
        "teardown: {} frames freed ({} fresh allocated in total)",
        st.local_frees + st.remote_frees,
        st.fresh
    );
    assert_eq!(st.local_frees + st.remote_frees, 18, "16 shared + 2 copies");
}
