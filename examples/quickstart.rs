//! Quickstart: create a machine, map memory, touch it, unmap it — and
//! watch the shootdown counters prove the paper's headline claim.
//!
//! Run with: `cargo run --example quickstart`

use radixvm::backend::{build, BackendKind};
use radixvm::hw::{Backing, Machine, Prot, PAGE_SIZE};

fn main() {
    // A simulated 8-core machine and one RadixVM address space, built
    // through the backend layer like every VM system in this workspace.
    let machine = Machine::new(8);
    let vm = build(&machine, BackendKind::Radix);
    for core in 0..8 {
        vm.attach_core(core);
    }

    // Thread-local pattern: each "core" maps, writes, and unmaps its own
    // region of the *shared* address space.
    for core in 0..8usize {
        let addr = 0x10_0000_0000 + ((core as u64) << 24);
        vm.mmap(core, addr, 64 * PAGE_SIZE, Prot::RW, Backing::Anon)
            .expect("mmap");
        for p in 0..64u64 {
            machine
                .write_u64(core, &*vm, addr + p * PAGE_SIZE, core as u64 * 1000 + p)
                .expect("write");
        }
        for p in (0..64u64).step_by(7) {
            let v = machine.read_u64(core, &*vm, addr + p * PAGE_SIZE).unwrap();
            assert_eq!(v, core as u64 * 1000 + p);
        }
        vm.munmap(core, addr, 64 * PAGE_SIZE).expect("munmap");
        vm.maintain(core); // Refcache tick (kernel timer in the paper)
    }

    let ops = vm.op_stats();
    let hw = machine.stats();
    println!("mmaps: {}, munmaps: {}", ops.mmaps, ops.munmaps);
    println!(
        "faults: {} allocating, {} fill",
        ops.faults_alloc, ops.faults_fill
    );
    println!("TLB: {} hits, {} misses", hw.tlb_hits, hw.tlb_misses);
    println!(
        "shootdown IPIs: {} (local pattern ⇒ zero, §5.3)",
        hw.shootdown_ipis
    );
    assert_eq!(hw.shootdown_ipis, 0);

    // Overlapping operations still serialize correctly.
    vm.mmap(0, 0x2000_0000, 4 * PAGE_SIZE, Prot::READ, Backing::Anon)
        .unwrap();
    let err = machine.write_u64(1, &*vm, 0x2000_0000, 1).unwrap_err();
    println!("write to read-only mapping: {err}");
}
