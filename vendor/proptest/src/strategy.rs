//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for storage in a heterogeneous [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the given arms; each is picked with equal probability.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy behind [`any`].
pub struct AnyOf<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> AnyOf<$t> {
                AnyOf { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> AnyOf<bool> {
        AnyOf {
            _marker: std::marker::PhantomData,
        }
    }
}
