//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! this vendored crate implements the subset of proptest the workspace's
//! property tests use: the [`Strategy`] trait over integer ranges, tuples,
//! `prop_map`, [`Just`], `prop_oneof!`, `collection::vec`, `any`, and the
//! `proptest!` / `prop_assert*` macros, driven by a deterministic
//! splitmix64 RNG.
//!
//! Differences from real proptest: cases are sampled deterministically
//! from a fixed seed (reruns are exact), and there is **no shrinking** —
//! a failing case prints its full input instead of a minimized one. Swap
//! the real crate back in via the workspace manifest for shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// The usual `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy) { body }` item
/// becomes a `#[test]` that samples `strategy` for the configured number
/// of cases and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case as u64,
                    );
                    let value = $crate::Strategy::generate(&strategy, &mut rng);
                    let input_repr = format!("{:?}", &value);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let $pat = value;
                            $body
                        }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed (no shrinking in the \
                             vendored stand-in); input: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            input_repr
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among the listed strategies (which must share one
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
