//! Deterministic RNG and per-test configuration.

/// Configuration of one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A splitmix64 RNG: fast, and deterministic given the (test, case) pair.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives the RNG for one case of one named test, so every test and
    /// every case explores a different sequence while reruns are exact.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % bound
    }
}
