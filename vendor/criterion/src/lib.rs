//! Offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! this vendored crate implements the subset of criterion's API the
//! `rvm_bench` benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros — over a plain wall-clock measurement loop. Output is one line
//! per benchmark: median and spread of per-iteration time across samples.
//!
//! It is not statistically rigorous (no outlier analysis, no HTML
//! reports); it exists so `cargo bench` runs and prints honest numbers
//! offline. Swap the real crate back in via the workspace manifest for
//! publication-grade measurements.

use std::time::{Duration, Instant};

/// Target wall-clock time for one sample of iterations.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measures `routine` and prints one result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut routine: F,
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };

        // Calibration sample: find an iteration count that fills roughly
        // one SAMPLE_TARGET window.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let lo = samples_ns[0];
        let hi = samples_ns[samples_ns.len() - 1];
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "{label:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function that prevents the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
