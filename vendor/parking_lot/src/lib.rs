//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! this vendored crate provides `Mutex` and `RwLock` with parking_lot's
//! API surface (no lock poisoning, `const fn new`) implemented over the
//! `std::sync` primitives. A poisoned std lock — a thread panicked while
//! holding it — is treated as unlocked, exactly parking_lot's behaviour.
//! Fairness and micro-contention performance differ from the real crate;
//! neither matters here, because contention costs are charged by the
//! virtual-time simulator, not measured from the host locks.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking required).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Returns a mutable reference to the data (no locking required).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
