//! Epoch-based memory reclamation, API-compatible with the subset of
//! `crossbeam-epoch` used by `rvm_baselines` (Bonsai's RCU tree and the
//! lock-free skip list).
//!
//! The scheme is the classic three-epoch design: a global epoch counter,
//! one participant slot per thread publishing "pinned at epoch E", and
//! per-epoch garbage bags. Retired objects recorded at global epoch `e`
//! are freed once the global epoch reaches `e + 2`: advancing from `e` to
//! `e + 1` requires every pinned participant to have observed `e`, so by
//! `e + 2` no thread can still hold a reference obtained before the
//! object was unlinked. Orderings are deliberately all `SeqCst` — this
//! crate backs correctness tests, not production hot paths, and the
//! virtual-time simulator charges costs independently of real fences.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How many pins between attempts to advance the epoch and collect.
const PINS_BETWEEN_COLLECT: usize = 64;

/// One registered thread. `state == 0` means "not pinned"; otherwise the
/// value is `(epoch << 1) | 1`.
struct Participant {
    state: AtomicUsize,
}

/// A deferred destruction: type-erased pointer plus its dropper.
struct Garbage {
    ptr: *mut u8,
    dropper: unsafe fn(*mut u8),
}

// SAFETY: garbage is only ever dropped, on whichever thread collects it;
// every type retired through this module is owned heap data whose drop is
// safe to run off-thread (the caller of `defer_destroy` asserts as much,
// exactly as with real crossbeam).
unsafe impl Send for Garbage {}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Garbage bags tagged with the global epoch at retirement.
    garbage: Mutex<Vec<(usize, Garbage)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

/// Tries to advance the global epoch, then frees sufficiently old garbage.
fn try_advance_and_collect() {
    let g = global();
    let e = g.epoch.load(Ordering::SeqCst);
    let can_advance = {
        let parts = g.participants.lock().unwrap();
        parts.iter().all(|p| {
            let s = p.state.load(Ordering::SeqCst);
            s & 1 == 0 || s >> 1 == e
        })
    };
    if can_advance {
        let _ = g
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
    }
    let now = g.epoch.load(Ordering::SeqCst);
    // Drain expired garbage under the lock, drop it outside the lock (a
    // dropper may cascade into arbitrary user drops).
    let expired: Vec<Garbage> = {
        let mut bags = g.garbage.lock().unwrap();
        let mut expired = Vec::new();
        bags.retain_mut(|(epoch, item)| {
            if *epoch + 2 <= now {
                expired.push(Garbage {
                    ptr: item.ptr,
                    dropper: item.dropper,
                });
                false
            } else {
                true
            }
        });
        expired
    };
    for item in expired {
        // SAFETY: the epoch invariant above guarantees no thread can still
        // reach `ptr`; each item is dropped exactly once (it was moved out
        // of the bag list).
        unsafe { (item.dropper)(item.ptr) };
    }
}

struct Local {
    participant: Arc<Participant>,
    pin_depth: Cell<usize>,
    pins_since_collect: Cell<usize>,
}

impl Local {
    fn register() -> Local {
        let participant = Arc::new(Participant {
            state: AtomicUsize::new(0),
        });
        global()
            .participants
            .lock()
            .unwrap()
            .push(participant.clone());
        Local {
            participant,
            pin_depth: Cell::new(0),
            pins_since_collect: Cell::new(0),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        let mut parts = global().participants.lock().unwrap();
        parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

/// Pins the current thread, returning a [`Guard`] that keeps every object
/// reachable at pin time allocated until the guard drops.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.pin_depth.get();
        if depth == 0 {
            let g = global();
            // Publish "pinned at E" and re-check that E is still current;
            // without the re-check a collector could advance twice between
            // our load and our store and free something we are about to
            // read.
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                local
                    .participant
                    .state
                    .store((e << 1) | 1, Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        local.pin_depth.set(depth + 1);
        let pins = local.pins_since_collect.get() + 1;
        local.pins_since_collect.set(pins);
        if pins >= PINS_BETWEEN_COLLECT {
            local.pins_since_collect.set(0);
            try_advance_and_collect();
        }
    });
    Guard {
        _not_send: PhantomData,
    }
}

/// A pinned-epoch guard (see [`pin`]).
pub struct Guard {
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Defers destruction of the object behind `ptr` until no pinned
    /// thread can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// The pointed-to object must have been made unreachable to new
    /// readers before this call, `ptr` must own its allocation (created by
    /// [`Owned::new`] or [`Atomic::new`]), and it must not be retired
    /// twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        unsafe fn drop_box<T>(raw: *mut u8) {
            drop(Box::from_raw(raw as *mut T));
        }
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        g.garbage.lock().unwrap().push((
            epoch,
            Garbage {
                ptr: ptr.untagged_raw() as *mut u8,
                dropper: drop_box::<T>,
            },
        ));
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        LOCAL.with(|local| {
            let depth = local.pin_depth.get();
            debug_assert!(depth > 0);
            local.pin_depth.set(depth - 1);
            if depth == 1 {
                local.participant.state.store(0, Ordering::SeqCst);
            }
        });
    }
}

/// Bit mask of tag bits available in pointers to `T` (alignment bits).
fn tag_mask<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

/// Common interface of [`Owned`] and [`Shared`] for store/swap/CAS `new`
/// arguments.
pub trait Pointer<T> {
    /// Consumes the pointer, returning its tagged machine word.
    fn into_usize(self) -> usize;

    /// Rebuilds the pointer from a word produced by [`Pointer::into_usize`]
    /// (used to hand `new` back on a failed compare-exchange).
    fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated object not yet published to other threads.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    pub fn new(value: T) -> Owned<T> {
        Owned {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }

    /// Converts into a [`Shared`] bound to `_guard`'s lifetime.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let data = self.data;
        std::mem::forget(self);
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `data` holds a valid, exclusively owned allocation.
        unsafe { &*((self.data & !tag_mask::<T>()) as *const T) }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, and we hold `&mut self`.
        unsafe { &mut *((self.data & !tag_mask::<T>()) as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: `Owned` uniquely owns its allocation.
        unsafe { drop(Box::from_raw((self.data & !tag_mask::<T>()) as *mut T)) };
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        std::mem::forget(self);
        data
    }

    fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

/// A tagged shared pointer valid for the lifetime of a [`Guard`].
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Shared<'g, T> {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    fn from_usize(data: usize) -> Shared<'g, T> {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    fn untagged_raw(self) -> *mut T {
        (self.data & !tag_mask::<T>()) as *mut T
    }

    /// Returns true if the (untagged) pointer is null.
    pub fn is_null(self) -> bool {
        self.untagged_raw().is_null()
    }

    /// Returns the untagged raw pointer.
    pub fn as_raw(self) -> *const T {
        self.untagged_raw()
    }

    /// Returns the tag bits.
    pub fn tag(self) -> usize {
        self.data & tag_mask::<T>()
    }

    /// Returns the same pointer with the tag bits set to `tag`.
    pub fn with_tag(self, tag: usize) -> Shared<'g, T> {
        Shared::from_usize((self.data & !tag_mask::<T>()) | (tag & tag_mask::<T>()))
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to an object kept alive for
    /// `'g` (reached through a live link under the guard, with retirement
    /// going through [`Guard::defer_destroy`]).
    pub unsafe fn deref(self) -> &'g T {
        &*self.untagged_raw()
    }

    /// Converts to a reference, or `None` if null.
    ///
    /// # Safety
    ///
    /// As for [`Shared::deref`], when non-null.
    pub unsafe fn as_ref(self) -> Option<&'g T> {
        self.untagged_raw().as_ref()
    }

    /// Reclaims the allocation as an [`Owned`].
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access: no other thread may reach or
    /// free this pointer, now or later.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null());
        Owned {
            data: self.data & !tag_mask::<T>(),
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }

    fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed new value, returned to the caller.
    pub new: P,
}

/// An atomic tagged pointer managed through the epoch scheme.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic` is a pointer-sized atomic cell; the pointed-to objects
// are shared across threads, which is sound exactly when T is Send + Sync.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Atomic<T> {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Heap-allocates `value` and points at it.
    pub fn new(value: T) -> Atomic<T> {
        Atomic {
            data: AtomicUsize::new(Box::into_raw(Box::new(value)) as usize),
            _marker: PhantomData,
        }
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, _ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared::from_usize(self.data.load(Ordering::SeqCst))
    }

    /// Stores `new` (an [`Owned`] or [`Shared`]) into the atomic.
    pub fn store<P: Pointer<T>>(&self, new: P, _ord: Ordering) {
        self.data.store(new.into_usize(), Ordering::SeqCst);
    }

    /// Swaps in `new`, returning the previous pointer.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        _ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared::from_usize(self.data.swap(new.into_usize(), Ordering::SeqCst))
    }

    /// Compare-and-exchange of the full tagged word. On failure the
    /// proposed `new` pointer is handed back in the error, so an `Owned`
    /// is never leaked.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'g, T>,
        new: P,
        _success: Ordering,
        _failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let word = new.into_usize();
        match self.data.compare_exchange(
            current.into_usize(),
            word,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(Shared::from_usize(word)),
            Err(actual) => Err(CompareExchangeError {
                current: Shared::from_usize(actual),
                new: P::from_usize(word),
            }),
        }
    }
}

impl<T> Drop for Atomic<T> {
    fn drop(&mut self) {
        // Deliberately nothing: ownership of the pointee is managed by the
        // user (retired through `defer_destroy` or taken via
        // `into_owned`), exactly as with real crossbeam.
    }
}
