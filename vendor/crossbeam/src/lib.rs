//! Offline stand-in for the `crossbeam` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides the one subset of crossbeam the workspace
//! actually uses: `crossbeam::epoch` (see [`epoch`]). The API mirrors
//! `crossbeam-epoch` 0.9 closely enough that swapping the real crate back
//! in is a one-line change in the workspace manifest.

pub mod epoch;
